#include "ckpt/serialize.hpp"

#include <algorithm>

#include "common/crc32.hpp"

namespace ptycho::ckpt {

namespace {

// Scratch size for batched cplx array encoding (32 KiB of wire data).
constexpr usize kChunkElems = 4096;

void encode_u64(unsigned char* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t decode_u64(const unsigned char* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  return v;
}

void encode_u32(unsigned char* dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t decode_u32(const unsigned char* src) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(src[i]) << (8 * i);
  return v;
}

}  // namespace

// ---- Writer -----------------------------------------------------------------

Writer::Writer(const std::string& path, std::uint64_t file_magic, std::uint32_t version)
    : out_(path, std::ios::binary), path_(path) {
  PTYCHO_CHECK(out_.good(), "cannot open '" << path << "' for writing");
  u64(file_magic);
  u32(version);
}

Writer::~Writer() {
  // finish() is the explicit happy path; a destructor must not throw.
  if (!finished_ && out_.is_open()) out_.close();
}

void Writer::raw(const void* data, usize count) {
  crc_ = crc32(data, count, crc_);
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(count));
}

void Writer::u8(std::uint8_t v) { raw(&v, 1); }

void Writer::u32(std::uint32_t v) {
  unsigned char buf[4];
  encode_u32(buf, v);
  raw(buf, sizeof buf);
}

void Writer::u64(std::uint64_t v) {
  unsigned char buf[8];
  encode_u64(buf, v);
  raw(buf, sizeof buf);
}

void Writer::str(const std::string& s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void Writer::rect(const Rect& r) {
  i64(r.y0);
  i64(r.x0);
  i64(r.h);
  i64(r.w);
}

void Writer::cplx_array(const cplx* data, usize count) {
  u64(count);
  unsigned char buf[kChunkElems * 8];
  usize done = 0;
  while (done < count) {
    const usize n = std::min(kChunkElems, count - done);
    for (usize i = 0; i < n; ++i) {
      const cplx& c = data[done + i];
      encode_u32(buf + 8 * i, std::bit_cast<std::uint32_t>(static_cast<float>(c.real())));
      encode_u32(buf + 8 * i + 4, std::bit_cast<std::uint32_t>(static_cast<float>(c.imag())));
    }
    raw(buf, 8 * n);
    done += n;
  }
}

void Writer::finish() {
  u64(kFooterMagicV2);
  // The CRC trailer covers everything before it (magic, version, payload,
  // footer) and is itself excluded — written directly, not via raw().
  unsigned char buf[4];
  encode_u32(buf, crc_);
  out_.write(reinterpret_cast<const char*>(buf), sizeof buf);
  out_.flush();
  PTYCHO_CHECK(out_.good(), "write failed for '" << path_ << "'");
  out_.close();
  finished_ = true;
}

// ---- Reader -----------------------------------------------------------------

Reader::Reader(const std::string& path, std::uint64_t file_magic)
    : in_(path, std::ios::binary), path_(path) {
  PTYCHO_CHECK(in_.good(), "cannot open '" << path << "' for reading");
  // Footer check first: a file without the trailing magic was truncated
  // mid-write (e.g. by a dying rank) and must not be trusted. CRC-layout
  // files end [... kFooterMagicV2 u64][crc u32]; legacy files end at
  // kFooterMagic. The two footer magics differ, so a CRC-layout file
  // truncated by exactly the trailer length cannot masquerade as legacy.
  in_.seekg(0, std::ios::end);
  const std::streamoff size = in_.tellg();
  PTYCHO_CHECK(size >= 20, "'" << path << "' is too short to be a checkpoint file");
  unsigned char footer[8];
  bool has_crc_trailer = false;
  if (size >= 24) {
    in_.seekg(size - 12);
    in_.read(reinterpret_cast<char*>(footer), sizeof footer);
    has_crc_trailer = in_.good() && decode_u64(footer) == kFooterMagicV2;
  }
  if (has_crc_trailer) {
    unsigned char trailer[4];
    in_.read(reinterpret_cast<char*>(trailer), sizeof trailer);
    PTYCHO_CHECK(in_.good(), "'" << path << "' is truncated (missing CRC trailer)");
    const std::uint32_t stored = decode_u32(trailer);
    // Stream-verify the whole file (everything before the trailer): a torn
    // or bit-rotted shard must fail the restore, not poison the volume.
    in_.seekg(0);
    std::uint32_t crc = 0;
    char buf[1 << 16];
    std::streamoff left = size - 4;
    while (left > 0) {
      const auto n = static_cast<std::streamsize>(
          std::min<std::streamoff>(left, static_cast<std::streamoff>(sizeof buf)));
      in_.read(buf, n);
      PTYCHO_CHECK(in_.good(), "read failed while checksumming '" << path << "'");
      crc = crc32(buf, static_cast<usize>(n), crc);
      left -= n;
    }
    PTYCHO_CHECK(crc == stored,
                 "'" << path << "' failed its integrity check (CRC mismatch)");
  } else {
    // Legacy v1 layout (no CRC). The footer still guards truncation; the
    // per-file version check downstream decides whether v1 is acceptable.
    in_.clear();
    in_.seekg(size - 8);
    in_.read(reinterpret_cast<char*>(footer), sizeof footer);
    PTYCHO_CHECK(in_.good() && decode_u64(footer) == kFooterMagic,
                 "'" << path << "' is truncated or corrupt (bad footer)");
  }
  in_.clear();
  in_.seekg(0);
  PTYCHO_CHECK(u64() == file_magic, "'" << path << "' has the wrong file type magic");
  version_ = u32();
}

void Reader::fill(unsigned char* dst, usize count) {
  in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(count));
  PTYCHO_CHECK(in_.good(), "unexpected end of checkpoint file '" << path_ << "'");
}

std::uint8_t Reader::u8() {
  unsigned char b = 0;
  fill(&b, 1);
  return b;
}

std::uint32_t Reader::u32() {
  unsigned char buf[4];
  fill(buf, sizeof buf);
  return decode_u32(buf);
}

std::uint64_t Reader::u64() {
  unsigned char buf[8];
  fill(buf, sizeof buf);
  return decode_u64(buf);
}

std::string Reader::str() {
  const std::uint64_t len = u64();
  PTYCHO_CHECK(len < (1u << 20), "implausible string length in '" << path_ << "'");
  std::string s(len, '\0');
  if (len > 0) fill(reinterpret_cast<unsigned char*>(s.data()), len);
  return s;
}

Rect Reader::rect() {
  Rect r;
  r.y0 = i64();
  r.x0 = i64();
  r.h = i64();
  r.w = i64();
  return r;
}

void Reader::cplx_array(cplx* data, usize count) {
  const std::uint64_t stored = u64();
  PTYCHO_CHECK(stored == count, "cplx array length mismatch in '" << path_ << "': stored "
                                    << stored << ", expected " << count);
  unsigned char buf[kChunkElems * 8];
  usize done = 0;
  while (done < count) {
    const usize n = std::min(kChunkElems, count - done);
    fill(buf, 8 * n);
    for (usize i = 0; i < n; ++i) {
      const float re = std::bit_cast<float>(decode_u32(buf + 8 * i));
      const float im = std::bit_cast<float>(decode_u32(buf + 8 * i + 4));
      data[done + i] = cplx(static_cast<real>(re), static_cast<real>(im));
    }
    done += n;
  }
}

}  // namespace ptycho::ckpt
