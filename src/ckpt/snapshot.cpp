#include "ckpt/snapshot.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <tuple>

#include "ckpt/serialize.hpp"
#include "common/log.hpp"

namespace ptycho::ckpt {

namespace fs = std::filesystem;

namespace {
constexpr std::uint64_t kManifestMagic = 0x505459434D414E49ULL;  // "PTYCMANI"
constexpr std::uint64_t kShardMagic = 0x5054594353485244ULL;     // "PTYCSHRD"
constexpr const char* kManifestName = "manifest.ckpt";

std::string shard_name(int rank) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%04d.ckpt", rank);
  return buf;
}

void write_framed(Writer& w, const FramedVolume& volume) {
  w.rect(volume.frame);
  w.i64(volume.slices());
  w.cplx_array(volume.data.data(), static_cast<usize>(volume.data.size()));
}

FramedVolume read_framed(Reader& r) {
  const Rect frame = r.rect();
  const index_t slices = r.i64();
  PTYCHO_CHECK(slices >= 0 && frame.h >= 0 && frame.w >= 0, "corrupt framed volume header");
  FramedVolume volume(slices, frame);
  r.cplx_array(volume.data.data(), static_cast<usize>(volume.data.size()));
  return volume;
}

void write_square(Writer& w, const CArray2D& a) {
  PTYCHO_CHECK(a.rows() == a.cols(), "checkpointed 2-D fields must be square");
  w.i64(a.rows());
  w.cplx_array(a.data(), static_cast<usize>(a.size()));
}

CArray2D read_square(Reader& r) {
  const index_t n = r.i64();
  PTYCHO_CHECK(n >= 0, "corrupt square array header");
  CArray2D a(n, n);
  r.cplx_array(a.data(), static_cast<usize>(a.size()));
  return a;
}

}  // namespace

std::uint64_t chunk_step(int iteration, int chunk, int chunks_per_iteration) {
  return static_cast<std::uint64_t>(iteration) * static_cast<std::uint64_t>(chunks_per_iteration) +
         static_cast<std::uint64_t>(chunk);
}

bool snapshot_due(const Policy& policy, std::uint64_t step) {
  return policy.enabled() && step > 0 &&
         step % static_cast<std::uint64_t>(policy.every_chunks) == 0;
}

Manifest make_manifest(const RunInfo& run, int iteration, int chunk,
                       std::vector<double> cost_values) {
  Manifest m;
  m.dataset_name = run.dataset_name;
  m.probe_count = run.probe_count;
  m.slices = run.slices;
  m.step = chunk_step(iteration, chunk, run.chunks_per_iteration);
  m.iteration = iteration;
  m.chunk = chunk;
  m.chunks_per_iteration = run.chunks_per_iteration;
  m.nranks = run.nranks;
  m.refine_probe = run.refine_probe;
  m.update_mode = run.update_mode;
  m.cost_values = std::move(cost_values);
  m.tiles = run.tiles;
  return m;
}

std::string step_dir(const std::string& root, std::uint64_t step) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "step-%08" PRIu64, step);
  return (fs::path(root) / buf).string();
}

void write_manifest(const std::string& dir, const Manifest& manifest) {
  Writer w((fs::path(dir) / kManifestName).string(), kManifestMagic, manifest.version);
  w.str(manifest.dataset_name);
  w.i64(manifest.probe_count);
  w.i64(manifest.slices);
  w.u64(manifest.step);
  w.u32(static_cast<std::uint32_t>(manifest.iteration));
  w.u32(static_cast<std::uint32_t>(manifest.chunk));
  w.u32(static_cast<std::uint32_t>(manifest.chunks_per_iteration));
  w.u32(static_cast<std::uint32_t>(manifest.nranks));
  w.u8(manifest.refine_probe ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(manifest.update_mode));
  w.u64(manifest.cost_values.size());
  for (double v : manifest.cost_values) w.f64(v);
  w.u64(manifest.tiles.size());
  for (const TileInfo& tile : manifest.tiles) {
    w.u32(static_cast<std::uint32_t>(tile.rank));
    w.rect(tile.owned);
    w.rect(tile.extended);
    w.u64(tile.own_probes.size());
    for (index_t id : tile.own_probes) w.i64(id);
  }
  w.finish();
}

Manifest read_manifest(const std::string& dir) {
  Reader r((fs::path(dir) / kManifestName).string(), kManifestMagic);
  PTYCHO_CHECK(r.version() == kFormatVersion, "unsupported snapshot format version "
                                                  << r.version() << " (this build reads "
                                                  << kFormatVersion << ")");
  Manifest m;
  m.version = r.version();
  m.dataset_name = r.str();
  m.probe_count = r.i64();
  m.slices = r.i64();
  m.step = r.u64();
  m.iteration = static_cast<int>(r.u32());
  m.chunk = static_cast<int>(r.u32());
  m.chunks_per_iteration = static_cast<int>(r.u32());
  m.nranks = static_cast<int>(r.u32());
  m.refine_probe = r.u8() != 0;
  m.update_mode = static_cast<int>(r.u8());
  const std::uint64_t cost_count = r.u64();
  PTYCHO_CHECK(cost_count < (1u << 24), "implausible cost history length");
  m.cost_values.reserve(cost_count);
  for (std::uint64_t i = 0; i < cost_count; ++i) m.cost_values.push_back(r.f64());
  const std::uint64_t tile_count = r.u64();
  PTYCHO_CHECK(tile_count == static_cast<std::uint64_t>(m.nranks),
               "manifest tile count does not match its rank count");
  m.tiles.reserve(tile_count);
  for (std::uint64_t t = 0; t < tile_count; ++t) {
    TileInfo tile;
    tile.rank = static_cast<int>(r.u32());
    tile.owned = r.rect();
    tile.extended = r.rect();
    const std::uint64_t nprobes = r.u64();
    PTYCHO_CHECK(nprobes <= static_cast<std::uint64_t>(m.probe_count),
                 "tile owns more probes than the dataset has");
    tile.own_probes.reserve(nprobes);
    for (std::uint64_t i = 0; i < nprobes; ++i) tile.own_probes.push_back(r.i64());
    m.tiles.push_back(std::move(tile));
  }
  return m;
}

std::uint64_t write_shard(const std::string& dir, const ShardView& shard) {
  const std::string path = (fs::path(dir) / shard_name(shard.rank)).string();
  {
    Writer w(path, kShardMagic, kFormatVersion);
    w.u32(static_cast<std::uint32_t>(shard.rank));
    w.f64(shard.partial_cost);
    for (std::uint64_t s : shard.rng.s) w.u64(s);
    w.u64(shard.rng.cached_normal_bits);
    w.u8(shard.rng.have_cached_normal ? 1 : 0);
    write_framed(w, *shard.volume);
    write_framed(w, *shard.accbuf);
    write_square(w, *shard.probe);
    write_square(w, *shard.probe_grad);
    w.finish();
  }
  return static_cast<std::uint64_t>(fs::file_size(path));
}

std::uint64_t write_shard(const std::string& dir, const Shard& shard) {
  return write_shard(dir, ShardView{shard.rank, shard.partial_cost, shard.rng, &shard.volume,
                                    &shard.accbuf, &shard.probe, &shard.probe_grad});
}

Shard read_shard(const std::string& dir, int rank) {
  Reader r((fs::path(dir) / shard_name(rank)).string(), kShardMagic);
  PTYCHO_CHECK(r.version() == kFormatVersion, "unsupported shard format version "
                                                  << r.version());
  Shard shard;
  shard.rank = static_cast<int>(r.u32());
  PTYCHO_CHECK(shard.rank == rank, "shard file contains the wrong rank");
  shard.partial_cost = r.f64();
  for (std::uint64_t& s : shard.rng.s) s = r.u64();
  shard.rng.cached_normal_bits = r.u64();
  shard.rng.have_cached_normal = r.u8() != 0;
  shard.volume = read_framed(r);
  shard.accbuf = read_framed(r);
  shard.probe = read_square(r);
  shard.probe_grad = read_square(r);
  return shard;
}

std::optional<std::uint64_t> find_latest_step(const std::string& root) {
  std::error_code ec;
  std::optional<std::uint64_t> best;
  // Ranked by run progress, not directory number: `best_pos` compares
  // (iteration, chunk, step) lexicographically.
  std::tuple<int, int, std::uint64_t> best_pos;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    std::uint64_t step = 0;
    // No width specifier: step_dir pads to a *minimum* of 8 digits, and
    // larger steps print more.
    if (std::sscanf(name.c_str(), "step-%" SCNu64, &step) != 1) continue;
    Manifest manifest;
    try {
      manifest = read_manifest(entry.path().string());
    } catch (const Error&) {
      continue;  // missing/truncated/corrupt manifest: incomplete snapshot
    }
    const std::tuple<int, int, std::uint64_t> pos{manifest.iteration, manifest.chunk, step};
    if (!best || pos > best_pos) {
      best = step;
      best_pos = pos;
    }
  }
  return best;
}

Snapshot load_snapshot(const std::string& dir) {
  Snapshot snap;
  snap.manifest = read_manifest(dir);
  snap.shards.reserve(static_cast<usize>(snap.manifest.nranks));
  for (int rank = 0; rank < snap.manifest.nranks; ++rank) {
    Shard shard = read_shard(dir, rank);
    PTYCHO_CHECK(shard.volume.frame == snap.manifest.tiles[static_cast<usize>(rank)].extended,
                 "shard " << rank << " frame does not match the manifest tiling");
    PTYCHO_CHECK(shard.volume.slices() == snap.manifest.slices,
                 "shard " << rank << " slice count does not match the manifest");
    snap.shards.push_back(std::move(shard));
  }
  return snap;
}

Snapshot load_latest(const std::string& root) {
  const auto step = find_latest_step(root);
  PTYCHO_CHECK(step.has_value(), "no complete checkpoint found under '" << root << "'");
  return load_snapshot(step_dir(root, *step));
}

std::optional<Snapshot> load_newest_valid(const std::string& root,
                                          const RestoreFilter& filter) {
  // Collect every candidate first, ranked by run progress (same ordering
  // as find_latest_step), then try them newest-first: a snapshot whose
  // shard set fails validation falls back to the previous complete one
  // instead of aborting the recovery.
  struct Candidate {
    std::tuple<int, int, std::uint64_t> pos;
    std::uint64_t step = 0;
    Manifest manifest;
  };
  std::vector<Candidate> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    std::uint64_t step = 0;
    if (std::sscanf(name.c_str(), "step-%" SCNu64, &step) != 1) continue;
    Candidate c;
    try {
      c.manifest = read_manifest(entry.path().string());
    } catch (const Error& e) {
      log::warn() << "skipping snapshot '" << name << "': " << e.what();
      continue;
    }
    c.pos = {c.manifest.iteration, c.manifest.chunk, step};
    c.step = step;
    candidates.push_back(std::move(c));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.pos > b.pos; });

  for (const Candidate& c : candidates) {
    const Manifest& m = c.manifest;
    if (filter.update_mode >= 0 && m.update_mode != filter.update_mode) {
      log::warn() << "skipping snapshot step-" << c.step << ": different update mode";
      continue;
    }
    if (filter.refine_probe >= 0 && (m.refine_probe ? 1 : 0) != filter.refine_probe) {
      log::warn() << "skipping snapshot step-" << c.step << ": different probe refinement";
      continue;
    }
    const bool retiled = (filter.nranks > 0 && m.nranks != filter.nranks) ||
                         (filter.chunks_per_iteration > 0 &&
                          m.chunks_per_iteration != filter.chunks_per_iteration);
    if (retiled && !m.at_iteration_boundary()) {
      // Elastic restore cannot resume a partially swept iteration on a
      // different tiling — only an iteration-boundary snapshot transfers.
      log::warn() << "skipping snapshot step-" << c.step
                  << ": mid-iteration, unusable at a different layout/chunking";
      continue;
    }
    try {
      // Full validation: every shard's footer and CRC must check out.
      return load_snapshot(step_dir(root, c.step));
    } catch (const Error& e) {
      log::warn() << "skipping snapshot step-" << c.step << ": " << e.what();
    }
  }
  return std::nullopt;
}

void check_compatible(const Snapshot& snapshot, const Dataset& dataset) {
  const Manifest& m = snapshot.manifest;
  PTYCHO_CHECK(m.dataset_name == dataset.spec.name,
               "checkpoint is for dataset '" << m.dataset_name << "', not '"
                                             << dataset.spec.name << "'");
  PTYCHO_CHECK(m.probe_count == dataset.probe_count(),
               "checkpoint probe count " << m.probe_count << " != dataset "
                                         << dataset.probe_count());
  PTYCHO_CHECK(m.slices == dataset.spec.slices, "checkpoint slice count "
                                                    << m.slices << " != dataset "
                                                    << dataset.spec.slices);
}

void check_same_solver_flags(const Manifest& manifest, int update_mode, bool refine_probe) {
  PTYCHO_REQUIRE(manifest.update_mode == update_mode && manifest.refine_probe == refine_probe,
                 "checkpoint was taken with a different update mode / probe-refinement "
                 "setting — resuming with changed solver flags would silently diverge");
}

void require_iteration_boundary(const Manifest& manifest) {
  PTYCHO_REQUIRE(manifest.at_iteration_boundary(),
                 "elastic restore requires an iteration-boundary snapshot "
                 "(mid-iteration chunk splits do not transfer across layouts)");
}

}  // namespace ptycho::ckpt
