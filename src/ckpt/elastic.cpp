// Elastic restore: resume a K-rank snapshot on K' ranks.
//
// At a chunk boundary every overlap copy of V is identical across ranks
// (the Alg. 1 consistency invariant), so the shards' disjoint *owned*
// regions form an exact, seam-free cover of the field. Re-tiling is then
// pure geometry: each new rank's extended tile is the union of its
// intersections with the old owned rects. Rank 0 plays the role of the
// restore coordinator a real job would have — it reads the old shards and
// scatters the pieces through the fabric — so recovery exercises the same
// communication machinery as a production restart, not a shared-memory
// shortcut.
#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "core/passes.hpp"
#include "runtime/collectives.hpp"
#include "tensor/ops.hpp"

namespace ptycho::ckpt {

namespace {

/// One piece of a new rank's extended tile, sourced from an old shard.
struct Transfer {
  int old_rank = 0;
  Rect region;
};

/// Deterministic transfer list for a new extended rect — computed
/// identically by the coordinator and the receiving rank, so messages can
/// be matched by (phase, index) tags without a handshake.
std::vector<Transfer> plan_transfers(const Manifest& manifest, const Rect& extended) {
  std::vector<Transfer> plan;
  index_t covered = 0;
  for (const TileInfo& tile : manifest.tiles) {
    const Rect region = intersect(tile.owned, extended);
    if (region.empty()) continue;
    plan.push_back(Transfer{tile.rank, region});
    covered += region.area();
  }
  PTYCHO_CHECK(covered == extended.area(),
               "snapshot owned regions do not cover the new tile " << extended
                                                                   << " — incompatible field");
  return plan;
}

}  // namespace

FramedVolume assemble_volume(const Snapshot& snapshot) {
  Rect field;
  for (const TileInfo& tile : snapshot.manifest.tiles) {
    field = bounding_union(field, tile.owned);
  }
  FramedVolume full(snapshot.manifest.slices, field);
  for (const TileInfo& tile : snapshot.manifest.tiles) {
    copy_region(snapshot.shards[static_cast<usize>(tile.rank)].volume, full, tile.owned);
  }
  return full;
}

bool layout_matches(const Manifest& manifest, const Partition& partition) {
  if (manifest.nranks != partition.nranks()) return false;
  for (int rank = 0; rank < partition.nranks(); ++rank) {
    const TileInfo& old_tile = manifest.tiles[static_cast<usize>(rank)];
    const TileSpec& new_tile = partition.tile(rank);
    if (old_tile.owned != new_tile.owned || old_tile.extended != new_tile.extended ||
        old_tile.own_probes != new_tile.own_probes) {
      return false;
    }
  }
  return true;
}

void scatter_restore(rt::RankContext& ctx, const Snapshot& snapshot,
                     const Partition& partition, FramedVolume& tile_volume, CArray2D& probe) {
  PTYCHO_CHECK(partition.nranks() == ctx.nranks(),
               "restore partition rank count does not match the cluster");
  PTYCHO_CHECK(tile_volume.frame == partition.tile(ctx.rank()).extended,
               "tile volume frame does not match the new partition");

  // Coordinator: scatter every new rank's pieces. Self-transfers go
  // through the fabric too — one code path, and the traffic shows up in
  // the fabric stats like any real redistribution would.
  if (ctx.rank() == 0) {
    for (int dst = 0; dst < partition.nranks(); ++dst) {
      const std::vector<Transfer> plan =
          plan_transfers(snapshot.manifest, partition.tile(dst).extended);
      for (usize i = 0; i < plan.size(); ++i) {
        const Shard& shard = snapshot.shards[static_cast<usize>(plan[i].old_rank)];
        ctx.isend(dst, rt::make_tag(rt::Phase::kRestore, static_cast<std::int64_t>(i)),
                  pack_region(shard.volume, plan[i].region));
      }
    }
  }

  const std::vector<Transfer> plan = plan_transfers(snapshot.manifest, tile_volume.frame);
  for (usize i = 0; i < plan.size(); ++i) {
    const std::vector<cplx> payload =
        ctx.recv(0, rt::make_tag(rt::Phase::kRestore, static_cast<std::int64_t>(i)));
    unpack_replace_region(payload, tile_volume, plan[i].region);
  }

  // The probe is global and identical across the old ranks at a chunk
  // boundary; broadcast shard 0's copy so every new rank starts aligned.
  const CArray2D& saved_probe = snapshot.shards[0].probe;
  PTYCHO_CHECK(probe.rows() == saved_probe.rows() && probe.cols() == saved_probe.cols(),
               "snapshot probe size does not match the dataset probe");
  std::vector<cplx> flat(static_cast<usize>(saved_probe.size()));
  if (ctx.rank() == 0) {
    std::copy_n(saved_probe.data(), saved_probe.size(), flat.data());
  }
  rt::broadcast(ctx, flat, 0, rt::Phase::kRestoreProbe);
  std::copy_n(flat.data(), probe.size(), probe.data());
}

}  // namespace ptycho::ckpt
