// Image-plane partitioning: tiles, halos and probe assignment.
//
// This module encodes the geometric difference between the two algorithms
// of the paper (Figs. 2 and 3):
//  * Gradient Decomposition: a tile's extended region is its owned rect
//    unioned with the windows of *its own* probes only — small halos.
//  * Halo Voxel Exchange: the tile additionally replicates neighbouring
//    probe locations (the paper's configuration replicates two extra
//    rings of scan rows/columns), so halos are much larger and probe
//    measurements are stored redundantly.
#pragma once

#include <vector>

#include "physics/scan.hpp"
#include "runtime/topology.hpp"
#include "tensor/region.hpp"

namespace ptycho {

enum class Strategy {
  kGradientDecomposition,
  kHaloVoxelExchange,
};

[[nodiscard]] const char* to_string(Strategy s);

struct PartitionConfig {
  rt::Mesh2D mesh;
  Strategy strategy = Strategy::kGradientDecomposition;
  /// HVE: rings of extra scan rows/cols replicated around each tile's own
  /// block ("two extra rows of probe locations", paper Sec. VI-A).
  int hve_extra_rings = 2;
};

/// One rank's share of the image and measurements.
struct TileSpec {
  int rank = 0;
  int grid_row = 0;
  int grid_col = 0;
  Rect owned;     ///< disjoint cover of the field
  Rect extended;  ///< owned + halo (covers all assigned probe windows)
  std::vector<index_t> own_probes;         ///< probe ids whose center lies in `owned`
  std::vector<index_t> replicated_probes;  ///< HVE: neighbouring probes replicated here

  /// Halo overhang beyond the owned rect on each side (>= 0).
  [[nodiscard]] index_t halo_north() const { return owned.y0 - extended.y0; }
  [[nodiscard]] index_t halo_south() const { return extended.y1() - owned.y1(); }
  [[nodiscard]] index_t halo_west() const { return owned.x0 - extended.x0; }
  [[nodiscard]] index_t halo_east() const { return extended.x1() - owned.x1(); }
  [[nodiscard]] index_t max_halo() const;
};

class Partition {
 public:
  Partition(const ScanPattern& scan, const PartitionConfig& config);

  [[nodiscard]] const std::vector<TileSpec>& tiles() const { return tiles_; }
  [[nodiscard]] const TileSpec& tile(int rank) const;
  [[nodiscard]] const rt::Mesh2D& mesh() const { return config_.mesh; }
  [[nodiscard]] Strategy strategy() const { return config_.strategy; }
  [[nodiscard]] const Rect& field() const { return field_; }
  [[nodiscard]] int nranks() const { return config_.mesh.size(); }

  /// Overlap of the two ranks' extended regions (empty if disjoint).
  [[nodiscard]] Rect overlap(int rank_a, int rank_b) const;

  /// All overlapping extended-tile pairs (a < b) with their overlap rects.
  struct OverlapEdge {
    int rank_a = 0;
    int rank_b = 0;
    Rect region;
  };
  [[nodiscard]] std::vector<OverlapEdge> overlap_graph() const;

  /// HVE paste constraint (paper Sec. VI-B): every halo must be covered by
  /// the owned region of the adjacent tile, otherwise tiles cannot be kept
  /// consistent and the method cannot run ("NA" entries in Table II).
  [[nodiscard]] bool hve_paste_feasible() const;

  /// Largest halo overhang across tiles (reporting; pm = px * dx).
  [[nodiscard]] index_t max_halo_px() const;

  /// Total probe instances stored across ranks / total probes — the
  /// measurement replication factor (1.0 for GD, > 1 for HVE).
  [[nodiscard]] double measurement_replication() const;

 private:
  PartitionConfig config_;
  Rect field_;
  std::vector<TileSpec> tiles_;
  index_t probe_count_ = 0;
};

}  // namespace ptycho
