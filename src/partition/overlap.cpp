#include "partition/overlap.hpp"

namespace ptycho {

CardinalOverlaps cardinal_overlaps(const Partition& partition, int rank) {
  const rt::Mesh2D& mesh = partition.mesh();
  const rt::Mesh2D::Cardinal card = mesh.cardinal(rank);
  CardinalOverlaps out;
  out.north_rank = card.north;
  out.south_rank = card.south;
  out.west_rank = card.west;
  out.east_rank = card.east;
  if (card.north >= 0) out.north = partition.overlap(rank, card.north);
  if (card.south >= 0) out.south = partition.overlap(rank, card.south);
  if (card.west >= 0) out.west = partition.overlap(rank, card.west);
  if (card.east >= 0) out.east = partition.overlap(rank, card.east);
  return out;
}

std::vector<PasteEdge> paste_schedule(const Partition& partition) {
  std::vector<PasteEdge> edges;
  const int nranks = partition.nranks();
  for (int src = 0; src < nranks; ++src) {
    const Rect& owned = partition.tile(src).owned;
    for (int dst = 0; dst < nranks; ++dst) {
      if (dst == src) continue;
      const Rect strip = intersect(owned, partition.tile(dst).extended);
      if (!strip.empty()) edges.push_back(PasteEdge{src, dst, strip});
    }
  }
  return edges;
}

double extended_area_ratio(const Partition& partition) {
  double extended = 0.0;
  for (const TileSpec& tile : partition.tiles()) {
    extended += static_cast<double>(tile.extended.area());
  }
  return extended / static_cast<double>(partition.field().area());
}

}  // namespace ptycho
