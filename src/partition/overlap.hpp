// Neighbor overlap geometry derived from a Partition.
//
// Gradient Decomposition exchanges gradients over the overlaps of
// *extended* tiles (Sec. III/IV); Halo Voxel Exchange pastes owned voxels
// into the strips of neighbours' halos that fall inside this rank's owned
// region (Sec. II-C). Both schedules are precomputed here once per run.
#pragma once

#include "partition/tilegrid.hpp"

namespace ptycho {

/// Cardinal-neighbour overlap rects for one rank (empty Rect when absent
/// or disjoint). Used by the forward/backward pass schedule.
struct CardinalOverlaps {
  int north_rank = -1, south_rank = -1, west_rank = -1, east_rank = -1;
  Rect north, south, west, east;  ///< overlap of extended regions
};

[[nodiscard]] CardinalOverlaps cardinal_overlaps(const Partition& partition, int rank);

/// HVE paste edge: `src` sends the part of its *owned* region that lies
/// inside `dst`'s extended region (dst's halo strip).
struct PasteEdge {
  int src = 0;
  int dst = 0;
  Rect region;
};

/// All paste edges of the partition (every ordered overlapping pair).
[[nodiscard]] std::vector<PasteEdge> paste_schedule(const Partition& partition);

/// Diagnostic: total extended area / field area — the storage redundancy
/// of a decomposition (1.0 = no halos at all).
[[nodiscard]] double extended_area_ratio(const Partition& partition);

}  // namespace ptycho
