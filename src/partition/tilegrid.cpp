#include "partition/tilegrid.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ptycho {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kGradientDecomposition: return "GradientDecomposition";
    case Strategy::kHaloVoxelExchange: return "HaloVoxelExchange";
  }
  return "?";
}

index_t TileSpec::max_halo() const {
  return std::max({halo_north(), halo_south(), halo_west(), halo_east()});
}

namespace {

/// Even 1-D split: boundary i at round(i * extent / parts).
index_t split_point(index_t extent, int parts, int i) {
  return (extent * i + parts / 2) / parts;
}

}  // namespace

Partition::Partition(const ScanPattern& scan, const PartitionConfig& config)
    : config_(config), field_(scan.field()), probe_count_(scan.count()) {
  const rt::Mesh2D& mesh = config_.mesh;
  PTYCHO_REQUIRE(mesh.size() >= 1, "partition mesh must be non-empty");
  PTYCHO_REQUIRE(mesh.rows() <= field_.h && mesh.cols() <= field_.w,
                 "more mesh rows/cols than image pixels");

  tiles_.resize(static_cast<usize>(mesh.size()));
  for (int r = 0; r < mesh.rows(); ++r) {
    const index_t y0 = field_.y0 + split_point(field_.h, mesh.rows(), r);
    const index_t y1 = field_.y0 + split_point(field_.h, mesh.rows(), r + 1);
    for (int c = 0; c < mesh.cols(); ++c) {
      const index_t x0 = field_.x0 + split_point(field_.w, mesh.cols(), c);
      const index_t x1 = field_.x0 + split_point(field_.w, mesh.cols(), c + 1);
      const int rank = mesh.rank_of(r, c);
      TileSpec& tile = tiles_[static_cast<usize>(rank)];
      tile.rank = rank;
      tile.grid_row = r;
      tile.grid_col = c;
      tile.owned = Rect{y0, x0, y1 - y0, x1 - x0};
      tile.extended = tile.owned;
    }
  }

  // Assign each probe to the tile containing its window center; extend the
  // tile to cover the window (clipped to the field — windows never escape
  // the field by ScanPattern construction).
  for (const ProbeLocation& loc : scan.locations()) {
    const index_t cy = loc.window.y0 + loc.window.h / 2;
    const index_t cx = loc.window.x0 + loc.window.w / 2;
    int owner = -1;
    for (const TileSpec& tile : tiles_) {
      if (tile.owned.contains(cy, cx)) {
        owner = tile.rank;
        break;
      }
    }
    PTYCHO_CHECK(owner >= 0, "probe center outside the field");
    TileSpec& tile = tiles_[static_cast<usize>(owner)];
    tile.own_probes.push_back(loc.id);
    tile.extended = bounding_union(tile.extended, clip(loc.window, field_));
  }

  if (config_.strategy == Strategy::kHaloVoxelExchange) {
    // Replicate probes within `rings` scan steps (Chebyshev distance in the
    // scan grid) of any owned probe; augment the halo to cover them.
    const int rings = config_.hve_extra_rings;
    PTYCHO_REQUIRE(rings >= 0, "hve_extra_rings must be >= 0");
    const auto& locations = scan.locations();
    for (TileSpec& tile : tiles_) {
      if (tile.own_probes.empty()) continue;
      // Bounding block of the tile's own probes in scan-grid coordinates.
      index_t row_lo = locations[static_cast<usize>(tile.own_probes.front())].grid_row;
      index_t row_hi = row_lo;
      index_t col_lo = locations[static_cast<usize>(tile.own_probes.front())].grid_col;
      index_t col_hi = col_lo;
      for (index_t id : tile.own_probes) {
        const ProbeLocation& loc = locations[static_cast<usize>(id)];
        row_lo = std::min(row_lo, loc.grid_row);
        row_hi = std::max(row_hi, loc.grid_row);
        col_lo = std::min(col_lo, loc.grid_col);
        col_hi = std::max(col_hi, loc.grid_col);
      }
      for (const ProbeLocation& loc : locations) {
        const bool owned_here =
            loc.grid_row >= row_lo && loc.grid_row <= row_hi && loc.grid_col >= col_lo &&
            loc.grid_col <= col_hi;
        if (owned_here) continue;
        const index_t d_row = loc.grid_row < row_lo ? row_lo - loc.grid_row
                                                    : std::max<index_t>(loc.grid_row - row_hi, 0);
        const index_t d_col = loc.grid_col < col_lo ? col_lo - loc.grid_col
                                                    : std::max<index_t>(loc.grid_col - col_hi, 0);
        if (std::max(d_row, d_col) <= rings) {
          tile.replicated_probes.push_back(loc.id);
          tile.extended = bounding_union(tile.extended, clip(loc.window, field_));
        }
      }
    }
  }
}

const TileSpec& Partition::tile(int rank) const {
  PTYCHO_CHECK(rank >= 0 && rank < nranks(), "invalid rank " << rank);
  return tiles_[static_cast<usize>(rank)];
}

Rect Partition::overlap(int rank_a, int rank_b) const {
  return intersect(tile(rank_a).extended, tile(rank_b).extended);
}

std::vector<Partition::OverlapEdge> Partition::overlap_graph() const {
  std::vector<OverlapEdge> edges;
  for (int a = 0; a < nranks(); ++a) {
    for (int b = a + 1; b < nranks(); ++b) {
      const Rect region = overlap(a, b);
      if (!region.empty()) edges.push_back(OverlapEdge{a, b, region});
    }
  }
  return edges;
}

bool Partition::hve_paste_feasible() const {
  // Each halo strip must be covered by the owned region of the adjacent
  // tile: the overhang on a side must not exceed that neighbour's owned
  // extent, otherwise a paste would need voxels the neighbour does not own.
  const rt::Mesh2D& mesh = config_.mesh;
  for (const TileSpec& tile : tiles_) {
    const auto neighbor_extent = [&](int dr, int dc) -> index_t {
      const int nr = tile.grid_row + dr;
      const int nc = tile.grid_col + dc;
      if (!mesh.valid(nr, nc)) return 0;
      const TileSpec& n = tiles_[static_cast<usize>(mesh.rank_of(nr, nc))];
      return dr != 0 ? n.owned.h : n.owned.w;
    };
    if (tile.halo_north() > neighbor_extent(-1, 0)) return false;
    if (tile.halo_south() > neighbor_extent(+1, 0)) return false;
    if (tile.halo_west() > neighbor_extent(0, -1)) return false;
    if (tile.halo_east() > neighbor_extent(0, +1)) return false;
  }
  return true;
}

index_t Partition::max_halo_px() const {
  index_t best = 0;
  for (const TileSpec& tile : tiles_) best = std::max(best, tile.max_halo());
  return best;
}

double Partition::measurement_replication() const {
  usize stored = 0;
  for (const TileSpec& tile : tiles_) {
    stored += tile.own_probes.size() + tile.replicated_probes.size();
  }
  return probe_count_ == 0 ? 1.0
                           : static_cast<double>(stored) / static_cast<double>(probe_count_);
}

}  // namespace ptycho
