#include "partition/assignment.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "partition/overlap.hpp"

namespace ptycho {

void validate_partition(const Partition& partition, const ScanPattern& scan) {
  const Rect field = partition.field();

  // Owned rects tile the field exactly: disjoint and area-complete.
  index_t owned_area = 0;
  for (const TileSpec& tile : partition.tiles()) {
    PTYCHO_CHECK(field.contains(tile.owned), "tile " << tile.rank << " owned escapes field");
    PTYCHO_CHECK(tile.extended.contains(tile.owned),
                 "tile " << tile.rank << " extended does not contain owned");
    owned_area += tile.owned.area();
    for (const TileSpec& other : partition.tiles()) {
      if (other.rank <= tile.rank) continue;
      PTYCHO_CHECK(intersect(tile.owned, other.owned).empty(),
                   "owned rects of tiles " << tile.rank << " and " << other.rank << " overlap");
    }
  }
  PTYCHO_CHECK(owned_area == field.area(), "owned rects do not cover the field");

  // Probe ownership: exactly once, and windows covered by extended rects.
  std::vector<int> owner(static_cast<usize>(scan.count()), -1);
  for (const TileSpec& tile : partition.tiles()) {
    for (index_t id : tile.own_probes) {
      PTYCHO_CHECK(id >= 0 && id < scan.count(), "probe id out of range");
      PTYCHO_CHECK(owner[static_cast<usize>(id)] < 0,
                   "probe " << id << " owned by two tiles");
      owner[static_cast<usize>(id)] = tile.rank;
      PTYCHO_CHECK(tile.extended.contains(clip(scan[id].window, field)),
                   "tile " << tile.rank << " extended misses probe window " << id);
    }
    for (index_t id : tile.replicated_probes) {
      PTYCHO_CHECK(tile.extended.contains(clip(scan[id].window, field)),
                   "tile " << tile.rank << " extended misses replicated window " << id);
    }
  }
  for (index_t id = 0; id < scan.count(); ++id) {
    PTYCHO_CHECK(owner[static_cast<usize>(id)] >= 0, "probe " << id << " unowned");
  }
}

PartitionStats partition_stats(const Partition& partition) {
  PartitionStats stats;
  bool first = true;
  for (const TileSpec& tile : partition.tiles()) {
    const auto own = static_cast<index_t>(tile.own_probes.size());
    const auto rep = static_cast<index_t>(tile.replicated_probes.size());
    if (first) {
      stats.min_probes = stats.max_probes = own;
      stats.min_replicated = stats.max_replicated = rep;
      first = false;
    } else {
      stats.min_probes = std::min(stats.min_probes, own);
      stats.max_probes = std::max(stats.max_probes, own);
      stats.min_replicated = std::min(stats.min_replicated, rep);
      stats.max_replicated = std::max(stats.max_replicated, rep);
    }
  }
  stats.max_halo_px = partition.max_halo_px();
  stats.extended_area_ratio = extended_area_ratio(partition);
  stats.measurement_replication = partition.measurement_replication();
  return stats;
}

bool all_tiles_own_probes(const Partition& partition) {
  for (const TileSpec& tile : partition.tiles()) {
    if (tile.own_probes.empty()) return false;
  }
  return true;
}

std::string describe(const Partition& partition) {
  const PartitionStats stats = partition_stats(partition);
  std::ostringstream os;
  os << to_string(partition.strategy()) << " mesh " << partition.mesh().rows() << "x"
     << partition.mesh().cols() << ", probes/tile [" << stats.min_probes << ", "
     << stats.max_probes << "], replicated [" << stats.min_replicated << ", "
     << stats.max_replicated << "], max halo " << stats.max_halo_px << " px, area ratio "
     << stats.extended_area_ratio << ", meas replication " << stats.measurement_replication;
  return os.str();
}

}  // namespace ptycho
