// Partition validation and balance statistics.
#pragma once

#include <string>

#include "partition/tilegrid.hpp"

namespace ptycho {

/// Throws ptycho::Error with a description if the partition violates an
/// invariant: owned rects must exactly tile the field; every probe must be
/// owned by exactly one tile; every tile's extended rect must contain all
/// of its probes' windows and its owned rect.
void validate_partition(const Partition& partition, const ScanPattern& scan);

struct PartitionStats {
  index_t min_probes = 0;   ///< fewest own probes on any tile
  index_t max_probes = 0;   ///< most own probes on any tile
  index_t min_replicated = 0;
  index_t max_replicated = 0;
  index_t max_halo_px = 0;
  double extended_area_ratio = 1.0;
  double measurement_replication = 1.0;
};

[[nodiscard]] PartitionStats partition_stats(const Partition& partition);

/// True when every tile owns at least one probe. The sweep passes are
/// exact only in this regime (a probe-less tile has no halo and breaks the
/// accumulation chain); solvers warn and users should shrink the mesh or
/// fall back to the all-reduce synchronizer otherwise.
[[nodiscard]] bool all_tiles_own_probes(const Partition& partition);

/// One-line human-readable summary (harness logging).
[[nodiscard]] std::string describe(const Partition& partition);

}  // namespace ptycho
