#include "obs/session.hpp"

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptycho::obs {

Session::Session(SessionConfig config) : config_(std::move(config)) {
  if (tracing()) {
    Tracer::instance().clear();
    set_tracing_enabled(true);
  }
  if (metrics()) {
    registry().reset();
    set_metrics_enabled(true);
  }
  // Nothing requested: the session is inert and finish() is a no-op.
  finished_ = !tracing() && !metrics();
}

Session::~Session() { finish(); }

void Session::finish() {
  if (finished_) return;
  finished_ = true;
  if (tracing()) {
    set_tracing_enabled(false);
    Tracer& tracer = Tracer::instance();
    const std::uint64_t dropped = tracer.dropped();
    if (dropped > 0) {
      log::warn() << "trace ring overflow: " << dropped
                  << " span(s) dropped (chunks too long between drains)";
    }
    tracer.write_chrome_trace(config_.trace_path);
    log::info() << "trace written to " << config_.trace_path;
  }
  if (metrics()) {
    set_metrics_enabled(false);
    registry().write_json(config_.metrics_path);
    log::info() << "metrics written to " << config_.metrics_path;
  }
}

}  // namespace ptycho::obs
