#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace ptycho::obs {

namespace detail {
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {

/// Process-wide trace epoch: all timestamps are offsets from the first
/// now_ns() call, keeping exported values small and run-relative.
std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

thread_local ThreadContext t_context;

/// Small sequential id for ledger slot hashing (stable per thread,
/// independent of tracer registration so phase accounting works with
/// tracing off).
int thread_slot() noexcept {
  static std::atomic<int> next{0};
  thread_local const int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

void set_tracing_enabled(bool on) noexcept {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

const char* phase_key(Phase phase) noexcept {
  switch (phase) {
    case Phase::kNone: return "";
    case Phase::kCompute: return phase::kCompute;
    case Phase::kWait: return phase::kWait;
    case Phase::kComm: return phase::kComm;
    case Phase::kUpdate: return phase::kUpdate;
    case Phase::kCheckpoint: return phase::kCheckpoint;
  }
  return "";
}

// ---- PhaseLedger ------------------------------------------------------------

void PhaseLedger::add(Phase phase, std::uint64_t ns) noexcept {
  Cell& cell = cells_[thread_slot() % kSlots];
  cell.ns[static_cast<int>(phase)].fetch_add(ns, std::memory_order_relaxed);
}

void PhaseLedger::merge_into(PhaseProfiler& prof) noexcept {
  for (Cell& cell : cells_) {
    for (int p = 1; p < kPhaseCount; ++p) {  // skip kNone
      const std::uint64_t ns = cell.ns[p].exchange(0, std::memory_order_relaxed);
      if (ns != 0) prof.add(phase_key(static_cast<Phase>(p)), static_cast<double>(ns) * 1e-9);
    }
  }
}

void PhaseLedger::reset() noexcept {
  for (Cell& cell : cells_) {
    for (auto& ns : cell.ns) ns.store(0, std::memory_order_relaxed);
  }
}

// ---- thread context ---------------------------------------------------------

ThreadContext thread_context() noexcept { return t_context; }

ThreadContext set_thread_context(const ThreadContext& ctx) noexcept {
  const ThreadContext previous = t_context;
  t_context = ctx;
  return previous;
}

// ---- tracer -----------------------------------------------------------------

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - trace_epoch())
                                        .count());
}

/// Fixed-capacity SPSC ring: the owning thread is the only producer
/// (writes slots + tail), drains are the only consumer (reads slots,
/// writes head) and are serialized under the collector mutex.
struct Tracer::ThreadBuffer {
  static constexpr std::uint32_t kCapacity = 4096;  // 4096 * sizeof(SpanRecord) per thread

  SpanRecord slots[kCapacity];
  std::atomic<std::uint32_t> head{0};  ///< next slot to drain (consumer-owned)
  std::atomic<std::uint32_t> tail{0};  ///< next slot to write (producer-owned)
  std::atomic<std::uint64_t> dropped{0};
  int tid = 0;
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(collect_mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->tid = static_cast<int>(buffers_.size()) - 1;
  }
  return *buffer;
}

void Tracer::push(const SpanRecord& record) {
  ThreadBuffer& buf = local_buffer();
  const std::uint32_t tail = buf.tail.load(std::memory_order_relaxed);
  const std::uint32_t head = buf.head.load(std::memory_order_acquire);
  if (tail - head >= ThreadBuffer::kCapacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord& slot = buf.slots[tail % ThreadBuffer::kCapacity];
  slot = record;
  slot.tid = buf.tid;
  buf.tail.store(tail + 1, std::memory_order_release);
}

void Tracer::drain_one(ThreadBuffer& buffer) {
  const std::uint32_t tail = buffer.tail.load(std::memory_order_acquire);
  std::uint32_t head = buffer.head.load(std::memory_order_relaxed);
  for (; head != tail; ++head) {
    collected_.push_back(buffer.slots[head % ThreadBuffer::kCapacity]);
  }
  buffer.head.store(head, std::memory_order_release);
}

void Tracer::drain_all() {
  std::lock_guard<std::mutex> lock(collect_mutex_);
  for (auto& buffer : buffers_) drain_one(*buffer);
}

std::vector<SpanRecord> Tracer::snapshot() {
  std::lock_guard<std::mutex> lock(collect_mutex_);
  for (auto& buffer : buffers_) drain_one(*buffer);
  return collected_;
}

std::uint64_t Tracer::dropped() {
  std::lock_guard<std::mutex> lock(collect_mutex_);
  std::uint64_t total = dropped_total_;
  for (auto& buffer : buffers_) total += buffer->dropped.load(std::memory_order_relaxed);
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(collect_mutex_);
  for (auto& buffer : buffers_) {
    drain_one(*buffer);  // advances head to tail: ring is now empty
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
  collected_.clear();
  dropped_total_ = 0;
}

std::string Tracer::chrome_trace_json() {
  std::lock_guard<std::mutex> lock(collect_mutex_);
  for (auto& buffer : buffers_) drain_one(*buffer);

  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit_comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Process-name metadata: one lane group per rank.
  std::vector<int> pids;
  for (const SpanRecord& r : collected_) {
    const int pid = r.rank < 0 ? 0 : r.rank;
    bool seen = false;
    for (int p : pids) seen |= (p == pid);
    if (!seen) pids.push_back(pid);
  }
  for (int pid : pids) {
    emit_comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << pid << "\"}}";
  }
  for (const SpanRecord& r : collected_) {
    emit_comma();
    const int pid = r.rank < 0 ? 0 : r.rank;
    const double ts_us = static_cast<double>(r.start_ns) * 1e-3;
    os << "{\"name\":\"" << (r.name != nullptr ? r.name : "?") << "\"";
    if (r.instant) {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us;
    } else {
      const double dur_us =
          static_cast<double>(r.end_ns >= r.start_ns ? r.end_ns - r.start_ns : 0) * 1e-3;
      os << ",\"ph\":\"X\",\"ts\":" << ts_us << ",\"dur\":" << dur_us;
    }
    os << ",\"pid\":" << pid << ",\"tid\":" << r.tid;
    if (r.iteration >= 0 || r.chunk >= 0 || r.phase != Phase::kNone) {
      os << ",\"args\":{";
      bool farg = true;
      const auto arg_comma = [&] {
        if (!farg) os << ",";
        farg = false;
      };
      if (r.iteration >= 0) {
        arg_comma();
        os << "\"iteration\":" << r.iteration;
      }
      if (r.chunk >= 0) {
        arg_comma();
        os << "\"chunk\":" << r.chunk;
      }
      if (r.phase != Phase::kNone) {
        arg_comma();
        os << "\"phase\":\"" << phase_key(r.phase) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  std::uint64_t dropped = dropped_total_;
  for (auto& buffer : buffers_) dropped += buffer->dropped.load(std::memory_order_relaxed);
  os << "\n],\"otherData\":{\"dropped_spans\":" << dropped << "}}\n";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::ofstream out(path, std::ios::binary);
  PTYCHO_CHECK(out.good(), "cannot open trace output " << path);
  out << json;
  PTYCHO_CHECK(out.good(), "failed writing trace output " << path);
}

// ---- scopes -----------------------------------------------------------------

void SpanScope::finish() noexcept {
  if (!traced_ && ledger_ == nullptr) return;
  const std::uint64_t end = now_ns();
  if (ledger_ != nullptr) ledger_->add(phase_, end - start_ns_);
  if (traced_) {
    SpanRecord record;
    record.name = name_;
    record.start_ns = start_ns_;
    record.end_ns = end;
    record.rank = thread_context().rank;
    record.iteration = iteration_;
    record.chunk = chunk_;
    record.phase = phase_;
    Tracer::instance().push(record);
  }
}

void account(const char* name, Phase phase, double seconds, int iteration,
             int chunk) noexcept {
  if (seconds < 0) seconds = 0;
  const bool traced = tracing_enabled();
  PhaseLedger* ledger = phase != Phase::kNone ? thread_context().ledger : nullptr;
  if (!traced && ledger == nullptr) return;
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  if (ledger != nullptr) ledger->add(phase, ns);
  if (traced) {
    const std::uint64_t end = now_ns();
    SpanRecord record;
    record.name = name;
    record.start_ns = end >= ns ? end - ns : 0;
    record.end_ns = end;
    record.rank = thread_context().rank;
    record.iteration = iteration;
    record.chunk = chunk;
    record.phase = phase;
    Tracer::instance().push(record);
  }
}

void instant(const char* name) noexcept {
  if (!tracing_enabled()) return;
  SpanRecord record;
  record.name = name;
  record.start_ns = record.end_ns = now_ns();
  record.rank = thread_context().rank;
  record.instant = true;
  Tracer::instance().push(record);
}

namespace {

using Interval = std::pair<std::uint64_t, std::uint64_t>;

/// Sort + merge into a disjoint union.
std::vector<Interval> interval_union(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> merged;
  for (const Interval& iv : intervals) {
    if (iv.second <= iv.first) continue;
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

std::uint64_t measure(const std::vector<Interval>& disjoint) {
  std::uint64_t total = 0;
  for (const Interval& iv : disjoint) total += iv.second - iv.first;
  return total;
}

/// Measure of the intersection of two disjoint, sorted interval lists.
std::uint64_t intersection_measure(const std::vector<Interval>& a,
                                   const std::vector<Interval>& b) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint64_t lo = std::max(a[i].first, b[j].first);
    const std::uint64_t hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

OverlapStats comm_overlap(const std::vector<SpanRecord>& spans) {
  // Bucket per rank: overlap is a per-rank property (rank A's compute
  // hiding rank B's comm is not overlap).
  std::map<std::int32_t, std::pair<std::vector<Interval>, std::vector<Interval>>> per_rank;
  for (const SpanRecord& s : spans) {
    if (s.instant || s.end_ns <= s.start_ns) continue;
    auto& [compute, comm] = per_rank[s.rank];
    switch (s.phase) {
      case Phase::kCompute:
      case Phase::kUpdate:
        compute.emplace_back(s.start_ns, s.end_ns);
        break;
      case Phase::kComm:
      case Phase::kWait:
      case Phase::kCheckpoint:
        comm.emplace_back(s.start_ns, s.end_ns);
        break;
      case Phase::kNone:
        break;
    }
  }
  OverlapStats stats;
  for (auto& [rank, lists] : per_rank) {
    (void)rank;
    const std::vector<Interval> compute = interval_union(std::move(lists.first));
    const std::vector<Interval> comm = interval_union(std::move(lists.second));
    stats.comm_seconds += static_cast<double>(measure(comm)) * 1e-9;
    stats.hidden_seconds += static_cast<double>(intersection_measure(compute, comm)) * 1e-9;
  }
  return stats;
}

}  // namespace ptycho::obs
