// Observability session: RAII switch + exporter for one reconstruction.
//
// Constructing a Session with a non-empty trace path enables tracing (and
// clears any stale collected spans); a non-empty metrics path enables the
// metrics registry (and zeroes it). finish() — or the destructor — drains
// the tracer, writes the requested files and restores both switches, so a
// throwing solver still leaves a (partial) trace on disk.
#pragma once

#include <string>

namespace ptycho::obs {

struct SessionConfig {
  std::string trace_path;    ///< Chrome trace_event JSON ("" = tracing off)
  std::string metrics_path;  ///< metrics snapshot JSON ("" = metrics off)
};

class Session {
 public:
  explicit Session(SessionConfig config);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] bool tracing() const { return !config_.trace_path.empty(); }
  [[nodiscard]] bool metrics() const { return !config_.metrics_path.empty(); }

  /// Export + disable. Idempotent.
  void finish();

 private:
  SessionConfig config_;
  bool finished_ = false;
};

}  // namespace ptycho::obs
