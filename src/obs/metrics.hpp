// Metrics registry: named counters, gauges and histograms snapshotted to
// a stable JSON schema ("ptycho.metrics.v1").
//
// Usage pattern at instrumentation sites — resolve once, bump forever:
//
//   static obs::Counter& transforms = obs::registry().counter("fft2d_transforms_total");
//   transforms.add(1);
//
// add()/observe()/set() are internally gated on a cached atomic flag, so a
// disabled build of the same binary pays one relaxed load + branch per
// site. Registry entries are never removed — reset() zeroes values but
// keeps the objects, so cached references (the `static` above) survive
// across runs in one process (tests, benches).
//
// Metric glossary (all monotonic unless noted): see README "Observability".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ptycho::obs {

namespace detail {
/// Backing store for metrics_enabled(); use the accessors, not this.
extern std::atomic<bool> g_metrics;
}  // namespace detail

/// Cached-atomic metrics switch (independent of tracing). Inline so hot
/// paths pay one relaxed load, not a cross-TU call.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on) noexcept;

/// Monotonic u64 counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double (peak memory, wall seconds, rates).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// count/sum/min/max summary of observed values. Mutex-protected — meant
/// for low-frequency observations (checkpoint latencies), not hot loops.
class Histogram {
 public:
  void observe(double v) noexcept;
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Summary summary() const noexcept;
  void reset() noexcept;

 private:
  mutable std::mutex mutex_;
  Summary summary_;
};

class Registry {
 public:
  /// Look up or create; returned references are stable for the process
  /// lifetime (entries are never erased).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every value; objects (and cached references) stay valid.
  void reset();

  /// {"schema":"ptycho.metrics.v1","counters":{...},"gauges":{...},
  ///  "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..}}}
  [[nodiscard]] std::string json() const;
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry.
[[nodiscard]] Registry& registry();

}  // namespace ptycho::obs
