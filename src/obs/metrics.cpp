#include "obs/metrics.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace ptycho::obs {

namespace detail {
std::atomic<bool> g_metrics{false};
}  // namespace detail

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics.store(on, std::memory_order_relaxed);
}

void Histogram::observe(double v) noexcept {
  if (!metrics_enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (summary_.count == 0) {
    summary_.min = summary_.max = v;
  } else {
    if (v < summary_.min) summary_.min = v;
    if (v > summary_.max) summary_.max = v;
  }
  ++summary_.count;
  summary_.sum += v;
}

Histogram::Summary Histogram::summary() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

void Histogram::reset() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  summary_ = Summary{};
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

/// JSON-safe double: NaN/inf have no JSON spelling, fold them to 0.
void put_double(std::ostringstream& os, double v) {
  if (v != v || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity()) {
    os << 0;
    return;
  }
  os << v;
}

}  // namespace

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os.precision(12);
  os << "{\n  \"schema\": \"ptycho.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": ";
    put_double(os, g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->summary();
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": " << s.count
       << ", \"sum\": ";
    put_double(os, s.sum);
    os << ", \"min\": ";
    put_double(os, s.min);
    os << ", \"max\": ";
    put_double(os, s.max);
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void Registry::write_json(const std::string& path) const {
  const std::string payload = json();
  std::ofstream out(path, std::ios::binary);
  PTYCHO_CHECK(out.good(), "cannot open metrics output " << path);
  out << payload;
  PTYCHO_CHECK(out.good(), "failed writing metrics output " << path);
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace ptycho::obs
