// Span tracer + phase ledger: the observability core.
//
// Two consumers share one instrumentation point (SpanScope):
//
//  * The tracer records every span — name, [start, end) in ns, rank,
//    thread, iteration/chunk args — into a per-thread lock-free SPSC ring
//    drained at chunk boundaries into a process-wide collector, exported
//    as Chrome trace_event JSON (chrome://tracing, Perfetto).
//  * The phase ledger accumulates span durations into the five canonical
//    phases (compute/wait/comm/update/checkpoint) per rank, merged into
//    the rank's PhaseProfiler at chunk boundaries. The Fig. 7b breakdown
//    is therefore *derived from spans*: the profiler totals and the trace
//    are two views of the same measurements and cannot drift apart.
//
// Overhead contract: when tracing is off and no ledger is installed on the
// current thread, constructing a SpanScope is one relaxed atomic load, one
// TLS read and a branch — no clock reads, no allocation. Enabling tracing
// never allocates on the hot path either: rings are fixed-capacity and
// spans that do not fit are dropped (and counted).
//
// Thread model: each thread owns its ring (single producer); the collector
// is the only consumer and serializes drains under its mutex. Rank/ledger
// identity travels via a thread-local ThreadContext installed by the
// virtual cluster's rank threads and propagated to pool workers alongside
// the allocation hooks (common/parallel.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace ptycho::obs {

// ---- enable flags -----------------------------------------------------------

namespace detail {
/// Backing store for tracing_enabled(); use the accessors, not this.
extern std::atomic<bool> g_tracing;
}  // namespace detail

/// Cheap cached-atomic check; every instrumentation site branches on this.
/// Inline so hot paths pay one relaxed load, not a cross-TU call.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool on) noexcept;

// ---- phases -----------------------------------------------------------------

/// The canonical Fig. 7b phases plus kNone (traced but not accounted).
enum class Phase : std::uint8_t {
  kNone = 0,
  kCompute,
  kWait,
  kComm,
  kUpdate,
  kCheckpoint,
};
inline constexpr int kPhaseCount = 6;

/// Maps a phase to its ptycho::phase::* profiler key ("" for kNone).
[[nodiscard]] const char* phase_key(Phase phase) noexcept;

/// Per-rank span-duration accumulator, safe for concurrent adds from the
/// rank thread and its pool workers: threads hash onto cache-line-padded
/// slots of relaxed atomics, so the hot path is one fetch_add with no
/// sharing in the common case. merge_into() drains the cells into a
/// PhaseProfiler — call it only from the owning rank's thread at points
/// where no sweep is in flight (chunk boundaries, end of run).
class PhaseLedger {
 public:
  static constexpr int kSlots = 16;

  /// Add `ns` to `phase` from any thread (relaxed; no ordering needed —
  /// merge points are already synchronized by the pool join / barrier).
  void add(Phase phase, std::uint64_t ns) noexcept;

  /// Drain every cell into `prof` (exchange-to-zero, so repeated merges
  /// never double-count). kNone durations are not accumulated.
  void merge_into(PhaseProfiler& prof) noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> ns[kPhaseCount];
  };
  Cell cells_[kSlots];
};

// ---- thread context ---------------------------------------------------------

/// Rank identity + phase sink for the current thread. Installed by the
/// virtual cluster on rank threads; ThreadPool workers adopt the
/// submitting thread's context for the duration of a parallel region.
struct ThreadContext {
  int rank = -1;                  ///< -1: single-rank / unattributed
  PhaseLedger* ledger = nullptr;  ///< null: no phase accounting
};

[[nodiscard]] ThreadContext thread_context() noexcept;
/// Install `ctx` for this thread; returns the previous context (restore
/// it when leaving the scope that installed it).
ThreadContext set_thread_context(const ThreadContext& ctx) noexcept;

// ---- records ----------------------------------------------------------------

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// One completed span (or instant event) as stored in the rings. `name`
/// must be a string with static storage duration — the rings never copy.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::int32_t rank = -1;
  std::int32_t tid = 0;
  std::int32_t iteration = -1;  ///< -1: not tied to a schedule position
  std::int32_t chunk = -1;
  Phase phase = Phase::kNone;
  bool instant = false;  ///< true: a point event ("i"), duration ignored
};

// ---- tracer -----------------------------------------------------------------

/// Process-wide collector of drained spans. Thread rings register lazily
/// on first push and are never deallocated (threads may outlive runs);
/// clear() empties collected spans and resets rings without invalidating
/// any thread's registration.
class Tracer {
 public:
  static Tracer& instance();

  /// Push onto the calling thread's ring (drops + counts when full).
  /// Callers should gate on tracing_enabled(); push itself is
  /// unconditional so tests can drive it directly.
  void push(const SpanRecord& record);

  /// Move every ring's pending records into the collector. Safe from any
  /// thread, any time (consumer side is serialized internally).
  void drain_all();

  /// drain_all() + copy of everything collected so far.
  [[nodiscard]] std::vector<SpanRecord> snapshot();

  /// Spans lost to full rings since the last clear().
  [[nodiscard]] std::uint64_t dropped();

  /// Drop collected spans, empty the rings, reset the drop counter.
  void clear();

  /// Chrome trace_event JSON of everything collected (drains first).
  /// ts/dur are microseconds; pid is the rank (-1 folds to 0), tid the
  /// ring's registration id. Loadable in Perfetto / chrome://tracing.
  [[nodiscard]] std::string chrome_trace_json();
  void write_chrome_trace(const std::string& path);

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();
  void drain_one(ThreadBuffer& buffer);  // caller holds collect_mutex_

  std::mutex collect_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  // registration order
  std::vector<SpanRecord> collected_;
  std::uint64_t dropped_total_ = 0;
};

// ---- scopes -----------------------------------------------------------------

/// RAII span: actives itself only when the trace or the ledger wants the
/// measurement, otherwise costs a branch. One clock read per end.
class SpanScope {
 public:
  explicit SpanScope(const char* name, Phase phase = Phase::kNone, int iteration = -1,
                     int chunk = -1) noexcept
      : name_(name), iteration_(iteration), chunk_(chunk), phase_(phase) {
    traced_ = tracing_enabled();
    if (phase != Phase::kNone) ledger_ = thread_context().ledger;
    if (traced_ || ledger_ != nullptr) start_ns_ = now_ns();
  }
  ~SpanScope() { finish(); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void finish() noexcept;

  const char* name_;
  PhaseLedger* ledger_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::int32_t iteration_;
  std::int32_t chunk_;
  Phase phase_;
  bool traced_ = false;
};

/// Account an externally measured duration ending "now": adds `seconds`
/// to the thread's ledger under `phase` and, when tracing, emits a span
/// covering [now - seconds, now]. Used where the blocked time is reported
/// by the primitive itself (fabric recv, barrier).
void account(const char* name, Phase phase, double seconds, int iteration = -1,
             int chunk = -1) noexcept;

/// Emit an instant event (tracing only; no ledger effect).
void instant(const char* name) noexcept;

// ---- overlap analysis -------------------------------------------------------

/// Span-derived communication/compute overlap: how much comm+wait+IO time
/// was hidden behind compute. Computed per rank (pid) as the measure of
/// the intersection between the union of that rank's compute-phase
/// intervals (kCompute/kUpdate, any thread — the background slot counts)
/// and the union of its comm/IO intervals (kComm/kWait/kCheckpoint), then
/// summed across ranks. ratio() == 0 for a fully serialized pipeline;
/// approaching 1 means nearly all comm/IO ran under compute.
struct OverlapStats {
  double comm_seconds = 0.0;    ///< total comm/wait/IO interval measure
  double hidden_seconds = 0.0;  ///< part of it covered by compute intervals
  [[nodiscard]] double ratio() const {
    return comm_seconds > 0.0 ? hidden_seconds / comm_seconds : 0.0;
  }
};

/// Compute overlap stats from a span snapshot (Tracer::snapshot()).
/// Instant events and kNone spans are ignored.
[[nodiscard]] OverlapStats comm_overlap(const std::vector<SpanRecord>& spans);

}  // namespace ptycho::obs
