#include "physics/propagator.hpp"

#include <cmath>

#include "backend/kernels.hpp"

namespace ptycho {

Propagator::Propagator(const OpticsGrid& grid)
    : fft_(grid.probe_n, grid.probe_n),
      kernel_(static_cast<index_t>(grid.probe_n), static_cast<index_t>(grid.probe_n)) {
  const usize n = grid.probe_n;
  const double band_limit = (2.0 / 3.0) * grid.nyquist();
  for (usize iy = 0; iy < n; ++iy) {
    const double ky = grid.freq(iy);
    for (usize ix = 0; ix < n; ++ix) {
      const double kx = grid.freq(ix);
      const double k2 = kx * kx + ky * ky;
      if (std::sqrt(k2) > band_limit) {
        kernel_(static_cast<index_t>(iy), static_cast<index_t>(ix)) = cplx{};
        continue;
      }
      const double phase = -3.14159265358979323846 * grid.wavelength_pm * grid.dz_pm * k2;
      kernel_(static_cast<index_t>(iy), static_cast<index_t>(ix)) =
          cplx(static_cast<real>(std::cos(phase)), static_cast<real>(std::sin(phase)));
    }
  }
}

void Propagator::apply_kernel(View2D<cplx> psi, bool conjugate) const {
  if (fft::engine_flags().fused) {
    // Fused path: the H (or conj H) product rides in an FFT pass tile —
    // `apply` folds it into the forward's last column pass, `apply_adjoint`
    // into the inverse's first, so both fused entry points stay hot in the
    // per-probe loop. Results are bitwise identical to the composed path.
    if (conjugate) {
      fft_.forward(psi);
      fft_.multiply_inverse(kernel_.view(), psi, /*conj_kernel=*/true);
    } else {
      fft_.forward_multiply(psi, kernel_.view());
      fft_.inverse(psi);
    }
    return;
  }
  // Unfused escape hatch (PTYCHO_FFT_FUSED=0): a standalone full-field
  // spectral multiply between the two transforms, for A/B benchmarking.
  fft_.forward(psi);
  const backend::Kernels& kern = backend::kernels();
  kern.cmul_rows_tiled(psi.data(), static_cast<usize>(psi.row_stride()), psi.data(),
                       static_cast<usize>(psi.row_stride()), kernel_.data(),
                       static_cast<usize>(kernel_.cols()), conjugate,
                       static_cast<usize>(psi.rows()), static_cast<usize>(psi.cols()));
  fft_.inverse(psi);
}

void Propagator::apply(View2D<cplx> psi) const { apply_kernel(psi, false); }

void Propagator::apply_adjoint(View2D<cplx> psi) const { apply_kernel(psi, true); }

}  // namespace ptycho
