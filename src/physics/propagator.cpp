#include "physics/propagator.hpp"

#include <cmath>

#include "backend/kernels.hpp"

namespace ptycho {

Propagator::Propagator(const OpticsGrid& grid)
    : fft_(grid.probe_n, grid.probe_n),
      kernel_(static_cast<index_t>(grid.probe_n), static_cast<index_t>(grid.probe_n)) {
  const usize n = grid.probe_n;
  const double band_limit = (2.0 / 3.0) * grid.nyquist();
  for (usize iy = 0; iy < n; ++iy) {
    const double ky = grid.freq(iy);
    for (usize ix = 0; ix < n; ++ix) {
      const double kx = grid.freq(ix);
      const double k2 = kx * kx + ky * ky;
      if (std::sqrt(k2) > band_limit) {
        kernel_(static_cast<index_t>(iy), static_cast<index_t>(ix)) = cplx{};
        continue;
      }
      const double phase = -3.14159265358979323846 * grid.wavelength_pm * grid.dz_pm * k2;
      kernel_(static_cast<index_t>(iy), static_cast<index_t>(ix)) =
          cplx(static_cast<real>(std::cos(phase)), static_cast<real>(std::sin(phase)));
    }
  }
}

void Propagator::apply_kernel(View2D<cplx> psi, bool conjugate) const {
  fft_.forward(psi);
  const backend::Kernels& kern = backend::kernels();
  const auto cols = static_cast<usize>(psi.cols());
  for (index_t y = 0; y < psi.rows(); ++y) {
    cplx* row = psi.row(y);
    const cplx* h = kernel_.row(y);
    if (conjugate) {
      kern.cmul_conj_lanes(row, row, h, cols);
    } else {
      kern.cmul_lanes(row, row, h, cols);
    }
  }
  fft_.inverse(psi);
}

void Propagator::apply(View2D<cplx> psi) const { apply_kernel(psi, false); }

void Propagator::apply_adjoint(View2D<cplx> psi) const { apply_kernel(psi, true); }

}  // namespace ptycho
