// Probe formation: the complex illumination wavefield p_i of Eqn. (1).
//
// The probe is built in the aperture (Fourier) plane — a hard circular
// aperture of semi-angle alpha with defocus and spherical-aberration phase
// (the paper's acquisition: 30 mrad aperture, 25 nm defocus, 200 kV) —
// and inverse-transformed to the sample plane.
#pragma once

#include "physics/grid.hpp"
#include "tensor/array.hpp"

namespace ptycho {

struct ProbeParams {
  double aperture_mrad = 30.0;   ///< probe-forming aperture semi-angle
  double defocus_pm = 25.0e3;    ///< defocus Δf (25 nm in the paper)
  double cs_pm = 0.0;            ///< spherical aberration C_s (0 = aberration-corrected)
};

class Probe {
 public:
  /// Build the probe wavefield for the given optics/aberrations; the field
  /// is normalized to unit total intensity.
  Probe(const OpticsGrid& grid, const ProbeParams& params);

  /// Adopt an explicit wavefield (square) — used by probe refinement and
  /// by tests that need hand-built probes.
  explicit Probe(CArray2D field);

  [[nodiscard]] Probe clone() const { return Probe(field_.clone()); }

  [[nodiscard]] const CArray2D& field() const { return field_; }
  [[nodiscard]] CArray2D& mutable_field() { return field_; }
  [[nodiscard]] index_t n() const { return field_.rows(); }

  /// Radius (in pixels) of the disc containing `fraction` of the probe
  /// intensity; the partitioner uses this as the probe-circle radius of
  /// Fig. 1(b).
  [[nodiscard]] index_t support_radius_px(double fraction = 0.99) const;

  /// Total intensity (should be ~1 after normalization).
  [[nodiscard]] double total_intensity() const;

  /// Peak per-pixel intensity max |p|^2 — the ePIE-style step
  /// preconditioner (solvers divide the step by this so that update
  /// magnitudes are independent of grid and probe size).
  [[nodiscard]] double max_intensity() const;

 private:
  CArray2D field_;
};

}  // namespace ptycho
