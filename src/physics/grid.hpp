// Physical sampling grid and electron-optics constants.
//
// Length unit: picometers (pm) throughout, matching the paper's voxel
// specification of 10 x 10 x 125 pm^3 and probe halo widths quoted in pm.
#pragma once

#include "common/types.hpp"

namespace ptycho {

/// Relativistic electron wavelength in pm for an accelerating voltage in
/// kilovolts (200 kV -> ~2.508 pm, the paper's acquisition energy).
[[nodiscard]] double electron_wavelength_pm(double kilovolts);

/// Sampling of the probe window and the slice spacing.
struct OpticsGrid {
  usize probe_n = 64;          ///< probe/diffraction window is probe_n x probe_n
  double dx_pm = 10.0;         ///< transverse pixel size (pm/px)
  double dz_pm = 125.0;        ///< slice thickness (pm)
  double wavelength_pm = 2.5079;  ///< beam wavelength (pm)

  /// Spatial frequency (cycles/pm) of FFT bin i along an axis of length
  /// probe_n; standard DFT ordering.
  [[nodiscard]] double freq(usize i) const;

  /// Nyquist frequency magnitude (cycles/pm).
  [[nodiscard]] double nyquist() const { return 0.5 / dx_pm; }

  /// Window side length in pm.
  [[nodiscard]] double window_pm() const { return static_cast<double>(probe_n) * dx_pm; }
};

}  // namespace ptycho
