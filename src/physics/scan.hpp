// Raster scan patterns: the time-ordered probe locations of Fig. 1(b).
#pragma once

#include <vector>

#include "tensor/region.hpp"

namespace ptycho {

/// One probe location: acquisition order index and the global rect of the
/// probe window in the image plane.
struct ProbeLocation {
  index_t id = 0;       ///< time order (0-based; the paper's circles 1..9)
  Rect window;          ///< probe_n x probe_n window in global coordinates
  index_t grid_row = 0; ///< row of this location in the scan grid
  index_t grid_col = 0; ///< column in the scan grid
};

struct ScanParams {
  index_t rows = 9;        ///< scan grid rows
  index_t cols = 9;        ///< scan grid columns
  index_t step_px = 16;    ///< raster step in pixels along x (and y unless step_y_px set)
  index_t step_y_px = 0;   ///< raster step along y; 0 = same as step_px
  index_t margin_px = 0;   ///< extra blank margin around the scanned field
  index_t probe_n = 64;    ///< probe window size

  [[nodiscard]] index_t step_y() const { return step_y_px > 0 ? step_y_px : step_px; }
};

/// A complete raster scan over a rectangular field.
class ScanPattern {
 public:
  explicit ScanPattern(const ScanParams& params);

  [[nodiscard]] const std::vector<ProbeLocation>& locations() const { return locations_; }
  [[nodiscard]] index_t count() const { return static_cast<index_t>(locations_.size()); }
  [[nodiscard]] const ScanParams& params() const { return params_; }

  /// Global image rect that contains every probe window plus the margin —
  /// the reconstruction volume's x-y extent.
  [[nodiscard]] const Rect& field() const { return field_; }

  /// Linear overlap ratio between adjacent probe windows:
  /// 1 - step/probe_n (the paper quotes >70% for typical acquisitions).
  [[nodiscard]] double overlap_ratio() const;

  const ProbeLocation& operator[](index_t i) const {
    return locations_[static_cast<usize>(i)];
  }

 private:
  ScanParams params_;
  std::vector<ProbeLocation> locations_;
  Rect field_;
};

}  // namespace ptycho
