#include "physics/multislice.hpp"

#include <cmath>

#include "backend/kernels.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace ptycho {

MultisliceWorkspace::MultisliceWorkspace(index_t probe_n, index_t slices)
    : psi(probe_n, probe_n),
      far(probe_n, probe_n),
      grad(probe_n, probe_n),
      scratch(probe_n, probe_n) {
  psi_in.reserve(static_cast<usize>(slices));
  trans.reserve(static_cast<usize>(slices));
  for (index_t s = 0; s < slices; ++s) {
    psi_in.emplace_back(probe_n, probe_n);
    trans.emplace_back(probe_n, probe_n);
  }
}

WorkspacePool::WorkspacePool(index_t probe_n, index_t slices, int slots,
                             bool cache_transmittance) {
  PTYCHO_REQUIRE(slots >= 1, "workspace pool needs at least one slot");
  workspaces_.reserve(static_cast<usize>(slots));
  for (int s = 0; s < slots; ++s) {
    workspaces_.emplace_back(probe_n, slices);
    workspaces_.back().cache_transmittance = cache_transmittance;
  }
}

MultisliceOperator::MultisliceOperator(const OpticsGrid& grid, MultisliceConfig config)
    : grid_(grid), config_(config), propagator_(grid) {}

void MultisliceOperator::compute_transmittance(const FramedVolume& volume, const Rect& window,
                                               MultisliceWorkspace& ws) const {
  const index_t slices = volume.slices();
  PTYCHO_CHECK(ws.trans.size() == static_cast<usize>(slices),
               "workspace slice count mismatch");
  // kPotential pays exp/cos/sin per voxel; skip the rebuild when the cached
  // tile is provably current (same revision token, same window).
  const bool cacheable = config_.model == ObjectModel::kPotential && ws.cache_transmittance;
  if (cacheable && ws.trans_revision == volume.revision && ws.trans_window == window) {
    if (obs::metrics_enabled()) {
      static obs::Counter& hits = obs::registry().counter("workspace_cache_hits_total");
      hits.add(1);
    }
    return;
  }
  if (cacheable && obs::metrics_enabled()) {
    static obs::Counter& misses = obs::registry().counter("workspace_cache_misses_total");
    misses.add(1);
  }
  for (index_t s = 0; s < slices; ++s) {
    View2D<const cplx> v = volume.window(s, window);
    View2D<cplx> t = ws.trans[static_cast<usize>(s)].view();
    if (config_.model == ObjectModel::kTransmittance) {
      copy(v, t);
      continue;
    }
    // t = exp(i * sigma * V): exp(i s (a+bi)) = exp(-s b) * (cos(sa) + i sin(sa))
    const real sigma = config_.sigma;
    for (index_t y = 0; y < v.rows(); ++y) {
      const cplx* vr = v.row(y);
      cplx* tr = t.row(y);
      for (index_t x = 0; x < v.cols(); ++x) {
        const real amp = std::exp(-sigma * vr[x].imag());
        const real phase = sigma * vr[x].real();
        tr[x] = cplx(amp * std::cos(phase), amp * std::sin(phase));
      }
    }
  }
  if (cacheable) {
    ws.trans_revision = volume.revision;
    ws.trans_window = window;
  }
}

void MultisliceOperator::forward(const Probe& probe, const FramedVolume& volume,
                                 const Rect& window, MultisliceWorkspace& ws) const {
  const auto n = static_cast<index_t>(grid_.probe_n);
  PTYCHO_REQUIRE(window.h == n && window.w == n, "probe window must be probe_n x probe_n");
  PTYCHO_REQUIRE(volume.frame.contains(window), "probe window must lie inside the tile frame");
  const index_t slices = volume.slices();

  compute_transmittance(volume, window, ws);

  copy(probe.field().view(), ws.psi.view());
  for (index_t s = 0; s < slices; ++s) {
    // Record the wavefield entering the slice (needed for the adjoint).
    copy(ws.psi.view(), ws.psi_in[static_cast<usize>(s)].view());
    multiply_inplace(ws.trans[static_cast<usize>(s)].view(), ws.psi.view());
    propagator_.apply(ws.psi.view());
  }
  copy(ws.psi.view(), ws.far.view());
  // Unitary far-field transform: |far|^2 integrates to the exit-wave
  // energy (Parseval), so measurement magnitudes and gradients are
  // independent of the window size. The 1/n normalization rides in the
  // transform's last pass on the fused engine.
  const cplx unitary(real(1) / static_cast<real>(grid_.probe_n), 0);
  if (fft::engine_flags().fused) {
    propagator_.fft().forward_scale(ws.far.view(), unitary);
  } else {
    propagator_.fft().forward(ws.far.view());
    scale(unitary, ws.far.view());
  }
}

void MultisliceOperator::simulate_magnitude(const Probe& probe, const FramedVolume& volume,
                                            const Rect& window, MultisliceWorkspace& ws,
                                            View2D<real> out) const {
  forward(probe, volume, window, ws);
  for (index_t y = 0; y < out.rows(); ++y) {
    real* o = out.row(y);
    const cplx* f = ws.far.row(y);
    for (index_t x = 0; x < out.cols(); ++x) o[x] = std::abs(f[x]);
  }
}

double MultisliceOperator::cost_from_far(View2D<const real> y_mag,
                                         const MultisliceWorkspace& ws) const {
  double acc = 0.0;
  for (index_t y = 0; y < y_mag.rows(); ++y) {
    const real* ym = y_mag.row(y);
    const cplx* f = ws.far.row(y);
    for (index_t x = 0; x < y_mag.cols(); ++x) {
      const double diff = static_cast<double>(std::abs(std::complex<double>(f[x]))) -
                          static_cast<double>(ym[x]);
      acc += diff * diff;
    }
  }
  return acc;
}

double MultisliceOperator::cost(const Probe& probe, const FramedVolume& volume,
                                const Rect& window, View2D<const real> y_mag,
                                MultisliceWorkspace& ws) const {
  forward(probe, volume, window, ws);
  return cost_from_far(y_mag, ws);
}

double MultisliceOperator::cost_and_gradient(const Probe& probe, const FramedVolume& volume,
                                             const Rect& window, View2D<const real> y_mag,
                                             FramedVolume& grad_out, MultisliceWorkspace& ws,
                                             View2D<cplx>* probe_grad_out) const {
  PTYCHO_REQUIRE(grad_out.frame.contains(window), "gradient frame must contain the window");
  PTYCHO_REQUIRE(grad_out.slices() == volume.slices(), "gradient slice count mismatch");

  forward(probe, volume, window, ws);
  const double cost_value = cost_from_far(y_mag, ws);

  // Seed: g_far = 2 (|Psi| - |y|) * Psi / |Psi|  (Wirtinger gradient of f).
  const auto n = static_cast<index_t>(grid_.probe_n);
  for (index_t y = 0; y < n; ++y) {
    const real* ym = y_mag.row(y);
    const cplx* f = ws.far.row(y);
    cplx* g = ws.grad.row(y);
    for (index_t x = 0; x < n; ++x) {
      const real mag = std::abs(f[x]);
      if (mag > real(1e-20)) {
        g[x] = real(2) * (mag - ym[x]) / mag * f[x];
      } else {
        // At a zero of Psi the cost is not differentiable; subgradient 0
        // keeps the update bounded (same convention as PIE-family codes).
        g[x] = cplx{};
      }
    }
  }

  // Back through the unitary far-field transform: the adjoint of (1/n)*F
  // is (1/n)*F^H = n * inverse. The fused engine applies the combined
  // factor in the inverse's last pass (n^2 * 1/n collapses to n, exact for
  // the power-of-two probe windows).
  if (fft::engine_flags().fused) {
    propagator_.fft().inverse_scale(ws.grad.view(),
                                    cplx(static_cast<real>(grid_.probe_n), 0));
  } else {
    propagator_.fft().adjoint_forward(ws.grad.view());
    scale(cplx(real(1) / static_cast<real>(grid_.probe_n), 0), ws.grad.view());
  }

  const index_t slices = volume.slices();
  const real sigma = config_.sigma;
  const backend::Kernels& kern = backend::kernels();
  for (index_t s = slices - 1; s >= 0; --s) {
    // Back through the propagator.
    propagator_.apply_adjoint(ws.grad.view());
    const auto us = static_cast<usize>(s);
    View2D<const cplx> psi_in = ws.psi_in[us].view();
    View2D<const cplx> trans = ws.trans[us].view();
    View2D<cplx> g_slice = grad_out.window(s, window);
    // gt = conj(psi_in) .* g ; gV = gt (transmittance) or conj(i sigma t) .* gt.
    for (index_t y = 0; y < n; ++y) {
      const cplx* pi_row = psi_in.row(y);
      const cplx* t_row = trans.row(y);
      cplx* g_row = ws.grad.row(y);
      cplx* out_row = g_slice.row(y);
      const auto cols = static_cast<usize>(n);
      if (config_.model == ObjectModel::kTransmittance) {
        kern.cmul_conj_acc_lanes(out_row, g_row, pi_row, cols);
        // Continue the chain: g_psi = conj(t) .* g.
        kern.cmul_conj_lanes(g_row, g_row, t_row, cols);
      } else {
        kern.potential_backprop_lanes(out_row, g_row, pi_row, t_row, sigma, cols);
      }
    }
  }
  // After the loop ws.grad holds the gradient with respect to psi_0 — the
  // probe wavefield itself.
  if (probe_grad_out != nullptr) {
    add(ws.grad.view(), *probe_grad_out);
  }
  return cost_value;
}

}  // namespace ptycho
