#include "physics/multislice.hpp"

#include <cmath>

#include "backend/kernels.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace ptycho {

MultisliceWorkspace::MultisliceWorkspace(index_t probe_n, index_t slices,
                                         compact::Format compact_trans_format)
    : psi(probe_n, probe_n),
      far(probe_n, probe_n),
      grad(probe_n, probe_n),
      scratch(probe_n, probe_n),
      compact_trans(compact_trans_format) {
  psi_in.reserve(static_cast<usize>(slices));
  trans.reserve(static_cast<usize>(slices));
  const bool compact = compact_trans != compact::Format::kNone;
  for (index_t s = 0; s < slices; ++s) {
    psi_in.emplace_back(probe_n, probe_n);
    // With a compact cache the f32 planes stay unallocated (0x0) unless a
    // non-cacheable model later forces them (see compute_transmittance).
    trans.emplace_back(compact ? 0 : probe_n, compact ? 0 : probe_n);
  }
}

WorkspacePool::WorkspacePool(index_t probe_n, index_t slices, int slots,
                             bool cache_transmittance, compact::Format compact_trans) {
  PTYCHO_REQUIRE(slots >= 1, "workspace pool needs at least one slot");
  workspaces_.reserve(static_cast<usize>(slots));
  for (int s = 0; s < slots; ++s) {
    workspaces_.emplace_back(probe_n, slices, cache_transmittance ? compact_trans
                                                                  : compact::Format::kNone);
    workspaces_.back().cache_transmittance = cache_transmittance;
  }
}

MultisliceOperator::MultisliceOperator(const OpticsGrid& grid, MultisliceConfig config)
    : grid_(grid), config_(config), propagator_(grid) {}

bool MultisliceOperator::compact_cache_active(const MultisliceWorkspace& ws) const {
  // Compact storage rides the transmittance *cache*: without the cache the
  // planes are rebuilt per evaluation and encoding them would only add
  // work. kTransmittance evaluations always run f32.
  return ws.compact_trans != compact::Format::kNone &&
         config_.model == ObjectModel::kPotential && ws.cache_transmittance;
}

View2D<const cplx> MultisliceOperator::slice_transmittance(MultisliceWorkspace& ws,
                                                           index_t s) const {
  const auto us = static_cast<usize>(s);
  if (!compact_cache_active(ws)) return ws.trans[us].view();
  const auto n = static_cast<index_t>(grid_.probe_n);
  if (ws.trans_scratch.empty()) ws.trans_scratch = CArray2D(n, n);
  compact::decode(ws.compact_trans, reinterpret_cast<real*>(ws.trans_scratch.data()),
                  ws.trans_c[us].data(), static_cast<usize>(n) * static_cast<usize>(n) * 2);
  return ws.trans_scratch.view();
}

void MultisliceOperator::compute_transmittance(const FramedVolume& volume, const Rect& window,
                                               MultisliceWorkspace& ws) const {
  const index_t slices = volume.slices();
  PTYCHO_CHECK(ws.trans.size() == static_cast<usize>(slices),
               "workspace slice count mismatch");
  // kPotential pays exp/cos/sin per voxel; skip the rebuild when the cached
  // tile is provably current (same revision token, same window).
  const bool cacheable = config_.model == ObjectModel::kPotential && ws.cache_transmittance;
  if (cacheable && ws.trans_revision == volume.revision && ws.trans_window == window) {
    if (obs::metrics_enabled()) {
      static obs::Counter& hits = obs::registry().counter("workspace_cache_hits_total");
      hits.add(1);
    }
    return;
  }
  if (cacheable && obs::metrics_enabled()) {
    static obs::Counter& misses = obs::registry().counter("workspace_cache_misses_total");
    misses.add(1);
  }
  const bool compact = compact_cache_active(ws);
  const auto n = static_cast<index_t>(grid_.probe_n);
  if (compact) {
    const usize plane = static_cast<usize>(n) * static_cast<usize>(n) * 2;
    if (ws.trans_c.size() != static_cast<usize>(slices)) {
      ws.trans_c.assign(static_cast<usize>(slices), std::vector<std::uint16_t>(plane));
    }
    if (ws.trans_scratch.empty()) ws.trans_scratch = CArray2D(n, n);
  }
  for (index_t s = 0; s < slices; ++s) {
    View2D<const cplx> v = volume.window(s, window);
    // A compact-configured workspace defers the f32 planes; allocate them
    // here if a non-cacheable evaluation (e.g. kTransmittance model) needs
    // one after all.
    if (!compact && ws.trans[static_cast<usize>(s)].empty()) {
      ws.trans[static_cast<usize>(s)] = CArray2D(n, n);
    }
    View2D<cplx> t = compact ? ws.trans_scratch.view() : ws.trans[static_cast<usize>(s)].view();
    if (config_.model == ObjectModel::kTransmittance) {
      copy(v, t);
      continue;
    }
    // t = exp(i * sigma * V): exp(i s (a+bi)) = exp(-s b) * (cos(sa) + i sin(sa))
    const real sigma = config_.sigma;
    for (index_t y = 0; y < v.rows(); ++y) {
      const cplx* vr = v.row(y);
      cplx* tr = t.row(y);
      for (index_t x = 0; x < v.cols(); ++x) {
        const real amp = std::exp(-sigma * vr[x].imag());
        const real phase = sigma * vr[x].real();
        tr[x] = cplx(amp * std::cos(phase), amp * std::sin(phase));
      }
    }
    if (compact) {
      compact::encode(ws.compact_trans, ws.trans_c[static_cast<usize>(s)].data(),
                      reinterpret_cast<const real*>(ws.trans_scratch.data()),
                      static_cast<usize>(n) * static_cast<usize>(n) * 2);
    }
  }
  if (cacheable) {
    ws.trans_revision = volume.revision;
    ws.trans_window = window;
  }
}

void MultisliceOperator::forward(const Probe& probe, const FramedVolume& volume,
                                 const Rect& window, MultisliceWorkspace& ws) const {
  const auto n = static_cast<index_t>(grid_.probe_n);
  PTYCHO_REQUIRE(window.h == n && window.w == n, "probe window must be probe_n x probe_n");
  PTYCHO_REQUIRE(volume.frame.contains(window), "probe window must lie inside the tile frame");
  const index_t slices = volume.slices();

  compute_transmittance(volume, window, ws);

  // Fast tier: the last slice's propagation ends with an inverse FFT that
  // the far-field forward immediately undoes. F(F^-1(x)) == x exactly in
  // algebra, so the fast tier elides the roundtrip and forms
  // far = (1/n) * H .* F(T_last .* psi) directly — one full FFT pair
  // saved per evaluation, at the cost of the roundtrip's roundoff no
  // longer being replayed. Strict keeps the composed sequence bitwise.
  const bool fast_spectral =
      backend::active_precision() == backend::Precision::kFast && slices > 0;
  copy(probe.field().view(), ws.psi.view());
  for (index_t s = 0; s < slices; ++s) {
    // Record the wavefield entering the slice (needed for the adjoint).
    copy(ws.psi.view(), ws.psi_in[static_cast<usize>(s)].view());
    multiply_inplace(slice_transmittance(ws, s), ws.psi.view());
    if (!fast_spectral || s + 1 < slices) propagator_.apply(ws.psi.view());
  }
  // Unitary far-field transform: |far|^2 integrates to the exit-wave
  // energy (Parseval), so measurement magnitudes and gradients are
  // independent of the window size. The 1/n normalization rides in the
  // transform's last pass on the fused engine.
  const cplx unitary(real(1) / static_cast<real>(grid_.probe_n), 0);
  const auto lanes = static_cast<usize>(n) * static_cast<usize>(n);
  if (fast_spectral) {
    const backend::Kernels& kern = backend::kernels();
    const CArray2D& h = propagator_.kernel();
    if (fft::engine_flags().fused) {
      propagator_.fft().forward_multiply(ws.psi.view(), h.view());
    } else {
      propagator_.fft().forward(ws.psi.view());
      kern.cmul_lanes(ws.psi.data(), ws.psi.data(), h.data(), lanes);
    }
    kern.scale_lanes(ws.far.data(), ws.psi.data(), unitary, lanes);
  } else if (fft::engine_flags().fused) {
    copy(ws.psi.view(), ws.far.view());
    propagator_.fft().forward_scale(ws.far.view(), unitary);
  } else {
    copy(ws.psi.view(), ws.far.view());
    propagator_.fft().forward(ws.far.view());
    scale(unitary, ws.far.view());
  }
}

void MultisliceOperator::simulate_magnitude(const Probe& probe, const FramedVolume& volume,
                                            const Rect& window, MultisliceWorkspace& ws,
                                            View2D<real> out) const {
  forward(probe, volume, window, ws);
  for (index_t y = 0; y < out.rows(); ++y) {
    real* o = out.row(y);
    const cplx* f = ws.far.row(y);
    for (index_t x = 0; x < out.cols(); ++x) o[x] = std::abs(f[x]);
  }
}

double MultisliceOperator::cost_from_far(View2D<const real> y_mag,
                                         const MultisliceWorkspace& ws) const {
  double acc = 0.0;
  for (index_t y = 0; y < y_mag.rows(); ++y) {
    const real* ym = y_mag.row(y);
    const cplx* f = ws.far.row(y);
    for (index_t x = 0; x < y_mag.cols(); ++x) {
      const double diff = static_cast<double>(std::abs(std::complex<double>(f[x]))) -
                          static_cast<double>(ym[x]);
      acc += diff * diff;
    }
  }
  return acc;
}

double MultisliceOperator::cost(const Probe& probe, const FramedVolume& volume,
                                const Rect& window, View2D<const real> y_mag,
                                MultisliceWorkspace& ws) const {
  forward(probe, volume, window, ws);
  return cost_from_far(y_mag, ws);
}

double MultisliceOperator::cost_and_gradient(const Probe& probe, const FramedVolume& volume,
                                             const Rect& window, View2D<const real> y_mag,
                                             FramedVolume& grad_out, MultisliceWorkspace& ws,
                                             View2D<cplx>* probe_grad_out) const {
  PTYCHO_REQUIRE(grad_out.frame.contains(window), "gradient frame must contain the window");
  PTYCHO_REQUIRE(grad_out.slices() == volume.slices(), "gradient slice count mismatch");

  forward(probe, volume, window, ws);
  const double cost_value = cost_from_far(y_mag, ws);

  // Seed: g_far = 2 (|Psi| - |y|) * Psi / |Psi|  (Wirtinger gradient of f).
  const auto n = static_cast<index_t>(grid_.probe_n);
  for (index_t y = 0; y < n; ++y) {
    const real* ym = y_mag.row(y);
    const cplx* f = ws.far.row(y);
    cplx* g = ws.grad.row(y);
    for (index_t x = 0; x < n; ++x) {
      const real mag = std::abs(f[x]);
      if (mag > real(1e-20)) {
        g[x] = real(2) * (mag - ym[x]) / mag * f[x];
      } else {
        // At a zero of Psi the cost is not differentiable; subgradient 0
        // keeps the update bounded (same convention as PIE-family codes).
        g[x] = cplx{};
      }
    }
  }

  // Back through the unitary far-field transform: the adjoint of (1/n)*F
  // is (1/n)*F^H = n * inverse. The fused engine applies the combined
  // factor in the inverse's last pass (n^2 * 1/n collapses to n, exact for
  // the power-of-two probe windows).
  //
  // Fast tier: the adjoint at the last slice starts with a forward FFT
  // that exactly undoes this inverse, so the tier folds the pair into
  // grad = n * F^-1(conj(H) .* grad_far) — the mirror of the roundtrip
  // elided in forward(). Strict replays the composed sequence bitwise.
  const index_t slices = volume.slices();
  const bool fast_spectral =
      backend::active_precision() == backend::Precision::kFast && slices > 0;
  const backend::Kernels& kern = backend::kernels();
  if (fast_spectral) {
    const CArray2D& h = propagator_.kernel();
    const auto lanes = static_cast<usize>(n) * static_cast<usize>(n);
    kern.cmul_conj_lanes(ws.grad.data(), ws.grad.data(), h.data(), lanes);
    if (fft::engine_flags().fused) {
      propagator_.fft().inverse_scale(ws.grad.view(),
                                      cplx(static_cast<real>(grid_.probe_n), 0));
    } else {
      propagator_.fft().adjoint_forward(ws.grad.view());
      scale(cplx(real(1) / static_cast<real>(grid_.probe_n), 0), ws.grad.view());
    }
  } else if (fft::engine_flags().fused) {
    propagator_.fft().inverse_scale(ws.grad.view(),
                                    cplx(static_cast<real>(grid_.probe_n), 0));
  } else {
    propagator_.fft().adjoint_forward(ws.grad.view());
    scale(cplx(real(1) / static_cast<real>(grid_.probe_n), 0), ws.grad.view());
  }

  const real sigma = config_.sigma;
  for (index_t s = slices - 1; s >= 0; --s) {
    // Back through the propagator; at the last slice the fast tier already
    // applied conj(H) spectrally above.
    if (!fast_spectral || s + 1 < slices) propagator_.apply_adjoint(ws.grad.view());
    const auto us = static_cast<usize>(s);
    View2D<const cplx> psi_in = ws.psi_in[us].view();
    View2D<const cplx> trans = slice_transmittance(ws, s);
    View2D<cplx> g_slice = grad_out.window(s, window);
    // gt = conj(psi_in) .* g ; gV = gt (transmittance) or conj(i sigma t) .* gt.
    for (index_t y = 0; y < n; ++y) {
      const cplx* pi_row = psi_in.row(y);
      const cplx* t_row = trans.row(y);
      cplx* g_row = ws.grad.row(y);
      cplx* out_row = g_slice.row(y);
      const auto cols = static_cast<usize>(n);
      if (config_.model == ObjectModel::kTransmittance) {
        kern.cmul_conj_acc_lanes(out_row, g_row, pi_row, cols);
        // Continue the chain: g_psi = conj(t) .* g.
        kern.cmul_conj_lanes(g_row, g_row, t_row, cols);
      } else {
        kern.potential_backprop_lanes(out_row, g_row, pi_row, t_row, sigma, cols);
      }
    }
  }
  // After the loop ws.grad holds the gradient with respect to psi_0 — the
  // probe wavefield itself.
  if (probe_grad_out != nullptr) {
    add(ws.grad.view(), *probe_grad_out);
  }
  return cost_value;
}

}  // namespace ptycho
