// Fresnel (angular-spectrum) free-space propagation between slices.
//
// Propagation over one slice thickness dz is
//   psi <- IFFT( FFT(psi) * H ),   H(k) = exp(-i*pi*lambda*dz*|k|^2)
// with a 2/3-Nyquist band limit (standard multislice anti-aliasing).
// The adjoint (needed by the gradient engine) is the same sandwich with
// conj(H) — see the normalization argument in fft/plan.hpp. On the fused
// engine (fft::engine_flags().fused) the H product rides inside an FFT
// pass instead of a standalone full-field sweep, bitwise-identically.
#pragma once

#include "fft/fft2d.hpp"
#include "physics/grid.hpp"
#include "tensor/array.hpp"

namespace ptycho {

class Propagator {
 public:
  /// Kernel for one dz step on a probe_n x probe_n window.
  explicit Propagator(const OpticsGrid& grid);

  /// psi <- P(psi).
  void apply(View2D<cplx> psi) const;

  /// psi <- P^H(psi) (adjoint).
  void apply_adjoint(View2D<cplx> psi) const;

  [[nodiscard]] const CArray2D& kernel() const { return kernel_; }
  [[nodiscard]] const fft::Fft2D& fft() const { return fft_; }

 private:
  void apply_kernel(View2D<cplx> psi, bool conjugate) const;

  fft::Fft2D fft_;
  CArray2D kernel_;
};

}  // namespace ptycho
