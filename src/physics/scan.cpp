#include "physics/scan.hpp"

#include "common/error.hpp"

namespace ptycho {

ScanPattern::ScanPattern(const ScanParams& params) : params_(params) {
  PTYCHO_REQUIRE(params.rows >= 1 && params.cols >= 1, "scan grid must be at least 1x1");
  PTYCHO_REQUIRE(params.step_px >= 1, "scan step must be >= 1 px");
  PTYCHO_REQUIRE(params.probe_n >= 1, "probe window must be >= 1 px");
  PTYCHO_REQUIRE(params.margin_px >= 0, "margin must be non-negative");

  locations_.reserve(static_cast<usize>(params.rows * params.cols));
  index_t id = 0;
  for (index_t r = 0; r < params.rows; ++r) {
    for (index_t c = 0; c < params.cols; ++c) {
      ProbeLocation loc;
      loc.id = id++;
      loc.grid_row = r;
      loc.grid_col = c;
      loc.window = Rect{params.margin_px + r * params.step_y(),
                        params.margin_px + c * params.step_px, params.probe_n, params.probe_n};
      locations_.push_back(loc);
    }
  }
  const index_t extent_y =
      2 * params.margin_px + (params.rows - 1) * params.step_y() + params.probe_n;
  const index_t extent_x =
      2 * params.margin_px + (params.cols - 1) * params.step_px + params.probe_n;
  field_ = Rect{0, 0, extent_y, extent_x};
}

double ScanPattern::overlap_ratio() const {
  if (params_.step_px >= params_.probe_n) return 0.0;
  return 1.0 - static_cast<double>(params_.step_px) / static_cast<double>(params_.probe_n);
}

}  // namespace ptycho
