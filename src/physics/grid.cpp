#include "physics/grid.hpp"

#include <cmath>

#include "fft/fft2d.hpp"

namespace ptycho {

double electron_wavelength_pm(double kilovolts) {
  // λ = h / sqrt(2 m0 e U (1 + e U / (2 m0 c^2))), expressed in pm with U in volts.
  const double volts = kilovolts * 1e3;
  const double h = 6.62607015e-34;       // J s
  const double m0 = 9.1093837015e-31;    // kg
  const double e = 1.602176634e-19;      // C
  const double c = 2.99792458e8;         // m/s
  const double rel = 1.0 + e * volts / (2.0 * m0 * c * c);
  const double lambda_m = h / std::sqrt(2.0 * m0 * e * volts * rel);
  return lambda_m * 1e12;
}

double OpticsGrid::freq(usize i) const { return fft::fft_freq(i, probe_n) / dx_pm; }

}  // namespace ptycho
