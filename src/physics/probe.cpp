#include "physics/probe.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "fft/fft2d.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

Probe::Probe(const OpticsGrid& grid, const ProbeParams& params)
    : field_(static_cast<index_t>(grid.probe_n), static_cast<index_t>(grid.probe_n)) {
  const usize n = grid.probe_n;
  PTYCHO_REQUIRE(n >= 4, "probe window too small");
  const double lambda = grid.wavelength_pm;
  // Aperture cutoff in spatial frequency: alpha = lambda * k  =>  k_max.
  const double k_max = (params.aperture_mrad * 1e-3) / lambda;

  // Aperture-plane field with aberration phase chi(k).
  for (usize iy = 0; iy < n; ++iy) {
    const double ky = grid.freq(iy);
    for (usize ix = 0; ix < n; ++ix) {
      const double kx = grid.freq(ix);
      const double k2 = kx * kx + ky * ky;
      const double k = std::sqrt(k2);
      if (k > k_max) {
        field_(static_cast<index_t>(iy), static_cast<index_t>(ix)) = cplx{};
        continue;
      }
      // chi(k) = pi*lambda*df*k^2 + (pi/2)*Cs*lambda^3*k^4
      const double chi = 3.14159265358979323846 *
                             (lambda * params.defocus_pm * k2 +
                              0.5 * params.cs_pm * lambda * lambda * lambda * k2 * k2);
      field_(static_cast<index_t>(iy), static_cast<index_t>(ix)) =
          cplx(static_cast<real>(std::cos(chi)), static_cast<real>(-std::sin(chi)));
    }
  }

  // To the sample plane; center the probe in the window.
  fft::Fft2D plan(n, n);
  plan.inverse(field_.view());
  fft::fftshift(field_.view());

  // Normalize to unit total intensity.
  const double total = norm_sq(field_.view());
  PTYCHO_CHECK(total > 0.0, "probe field is identically zero — aperture too small for grid");
  const real s = static_cast<real>(1.0 / std::sqrt(total));
  scale(cplx(s, 0), field_.view());
}

Probe::Probe(CArray2D field) : field_(std::move(field)) {
  PTYCHO_REQUIRE(field_.rows() == field_.cols() && field_.rows() >= 1,
                 "probe wavefield must be square");
}

double Probe::total_intensity() const { return norm_sq(field_.view()); }

double Probe::max_intensity() const {
  const double peak = max_abs(field_.view());
  return peak * peak;
}

index_t Probe::support_radius_px(double fraction) const {
  // Radial cumulative intensity around the window center.
  const index_t n = field_.rows();
  const index_t cy = n / 2;
  const index_t cx = n / 2;
  const auto max_r = static_cast<usize>(n);  // radii past the window edge clamp here
  std::vector<double> radial(max_r + 1, 0.0);
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < n; ++x) {
      const double dy = static_cast<double>(y - cy);
      const double dx = static_cast<double>(x - cx);
      const auto r = static_cast<usize>(std::min<double>(std::sqrt(dy * dy + dx * dx),
                                                         static_cast<double>(max_r)));
      const double mag = std::abs(std::complex<double>(field_(y, x)));
      radial[r] += mag * mag;
    }
  }
  const double total = std::accumulate(radial.begin(), radial.end(), 0.0);
  double acc = 0.0;
  for (usize r = 0; r <= max_r; ++r) {
    acc += radial[r];
    if (acc >= fraction * total) return static_cast<index_t>(r);
  }
  return static_cast<index_t>(max_r);
}

}  // namespace ptycho
