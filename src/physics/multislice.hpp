// The multi-slice forward operator G(p_i, V) of Eqn. (1) and its adjoint.
//
// Forward (Maiden/Humphry/Rodenburg 2012, ref [14] of the paper):
//   psi_0 = probe;   for each slice s:  psi <- Prop( psi .* t_s )
//   far field Psi = FFT(psi_S);  simulated magnitudes |Psi|.
// The per-probe cost is f_i(V) = sum_k ( |y_i[k]| - |Psi[k]| )^2 and the
// gradient dF/dV is obtained by reverse-mode differentiation through the
// slice chain. The gradient has support only inside the probe window —
// the "special property" (Sec. III) the whole decomposition rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "physics/probe.hpp"
#include "physics/propagator.hpp"
#include "tensor/compact.hpp"
#include "tensor/framed.hpp"
#include "tensor/ops.hpp"

namespace ptycho {

/// How the complex volume V parameterizes the per-slice transmittance.
enum class ObjectModel {
  kTransmittance,  ///< t_s = V_s directly (V is the complex transmittance)
  kPotential,      ///< t_s = exp(i * sigma * V_s) (V is the scattering potential)
};

/// Reusable per-thread buffers for one probe evaluation; sized for a given
/// probe window and slice count. Keeping these out of the operator makes
/// the operator shareable across ranks.
struct MultisliceWorkspace {
  CArray2D psi;                    ///< current wavefield (probe_n x probe_n)
  std::vector<CArray2D> psi_in;    ///< wavefield entering each slice (pre-multiply)
  std::vector<CArray2D> trans;     ///< transmittance of each slice over the window
  CArray2D far;                    ///< far-field wavefield FFT(psi_S)
  CArray2D grad;                   ///< backprop wavefield
  CArray2D scratch;

  /// Opt-in transmittance cache for ObjectModel::kPotential: when enabled,
  /// compute_transmittance skips the per-slice exp/cos/sin rebuild if the
  /// same (volume revision, window) repeats. Enable only on paths where
  /// every volume mutation between evaluations goes through apply_gradient
  /// (which bumps the revision) — the solver sweep loops qualify; ad-hoc
  /// voxel pokes in tests do not.
  bool cache_transmittance = false;
  std::uint64_t trans_revision = 0;  ///< revision ws.trans was built from (0 = none)
  Rect trans_window{};               ///< window ws.trans was built for

  /// Fast-tier compact transmittance cache (kNone on the strict tier):
  /// when set AND the cache above is engaged (kPotential + enabled), the
  /// cached planes persist as 16-bit payloads in `trans_c` — half the
  /// resident footprint and half the read bandwidth per hit — and each
  /// slice is decoded into `trans_scratch` at use. The f32 `trans` planes
  /// are then never allocated. Tolerance-gated like all fast-tier state.
  compact::Format compact_trans = compact::Format::kNone;
  std::vector<std::vector<std::uint16_t>> trans_c;  ///< encoded planes (2*n*n halves each)
  CArray2D trans_scratch;                           ///< per-use decode target (one plane)

  /// Fast-tier measurement decode target (lazily sized by the sweep when
  /// measurements are held compact; unused otherwise).
  RArray2D meas_scratch;

  MultisliceWorkspace() = default;
  MultisliceWorkspace(index_t probe_n, index_t slices,
                      compact::Format compact_trans = compact::Format::kNone);
};

/// One workspace per execution slot of a sweep scheduler. The pool is
/// sized once (on the constructing thread, so per-rank memory tracking
/// charges every buffer to the owning rank) and handed out by slot index —
/// workspace identity follows the slot, not the item, which is safe
/// because a workspace is pure scratch: per-item results never depend on
/// which slot (and therefore which workspace) evaluated them.
class WorkspacePool {
 public:
  WorkspacePool(index_t probe_n, index_t slices, int slots, bool cache_transmittance,
                compact::Format compact_trans = compact::Format::kNone);

  [[nodiscard]] int slots() const { return static_cast<int>(workspaces_.size()); }
  [[nodiscard]] MultisliceWorkspace& operator[](int slot) {
    return workspaces_[static_cast<usize>(slot)];
  }

 private:
  std::vector<MultisliceWorkspace> workspaces_;
};

struct MultisliceConfig {
  ObjectModel model = ObjectModel::kTransmittance;
  real sigma = real(1);  ///< interaction constant for ObjectModel::kPotential
};

class MultisliceOperator {
 public:
  MultisliceOperator(const OpticsGrid& grid, MultisliceConfig config = {});

  [[nodiscard]] const OpticsGrid& grid() const { return grid_; }
  [[nodiscard]] const MultisliceConfig& config() const { return config_; }
  [[nodiscard]] const Propagator& propagator() const { return propagator_; }

  /// Run the forward model for the probe positioned at global rect
  /// `window` (probe_n x probe_n, inside V.frame). Leaves the far-field
  /// wavefield in ws.far and the stored intermediates for backprop.
  void forward(const Probe& probe, const FramedVolume& volume, const Rect& window,
               MultisliceWorkspace& ws) const;

  /// Simulated magnitudes |G(p, V)| into `out` (probe_n x probe_n).
  void simulate_magnitude(const Probe& probe, const FramedVolume& volume, const Rect& window,
                          MultisliceWorkspace& ws, View2D<real> out) const;

  /// Cost f_i for measured magnitudes `y_mag` (requires a prior forward()).
  [[nodiscard]] double cost_from_far(View2D<const real> y_mag,
                                     const MultisliceWorkspace& ws) const;

  /// Full evaluation: forward + cost + gradient. The gradient of f_i with
  /// respect to V is *added* into `grad_out` over `window` (same frame
  /// semantics as `volume`). If `probe_grad_out` is non-null, the gradient
  /// of f_i with respect to the probe wavefield is *added* into it (the
  /// backpropagated wavefield entering slice 0 — joint object+probe
  /// refinement comes for free from the adjoint chain). Returns f_i.
  double cost_and_gradient(const Probe& probe, const FramedVolume& volume, const Rect& window,
                           View2D<const real> y_mag, FramedVolume& grad_out,
                           MultisliceWorkspace& ws,
                           View2D<cplx>* probe_grad_out = nullptr) const;

  /// Cost only (cheaper: no intermediates retained beyond the forward).
  double cost(const Probe& probe, const FramedVolume& volume, const Rect& window,
              View2D<const real> y_mag, MultisliceWorkspace& ws) const;

 private:
  /// Fill ws.trans[s] (or ws.trans_c[s] when the compact cache is active)
  /// from the volume window.
  void compute_transmittance(const FramedVolume& volume, const Rect& window,
                             MultisliceWorkspace& ws) const;

  /// True when this evaluation stores/reads the transmittance compactly.
  [[nodiscard]] bool compact_cache_active(const MultisliceWorkspace& ws) const;

  /// Slice transmittance for use in the forward/adjoint chain: the f32
  /// plane, or a decode of the compact plane into ws.trans_scratch (valid
  /// until the next slice is requested).
  [[nodiscard]] View2D<const cplx> slice_transmittance(MultisliceWorkspace& ws,
                                                       index_t s) const;

  OpticsGrid grid_;
  MultisliceConfig config_;
  Propagator propagator_;
};

}  // namespace ptycho
