#include "common/options.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace ptycho {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    PTYCHO_CHECK(!body.empty(), "bare '--' is not a valid option");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      opts.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is another option or missing,
    // in which case it is a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values_[body] = argv[i + 1];
      ++i;
    } else {
      opts.values_[body] = "true";
    }
  }
  return opts;
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get_string(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Options::get_int(const std::string& key, long long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  PTYCHO_CHECK(end != nullptr && *end == '\0', "option --" << key << " expects an integer, got '"
                                                           << it->second << "'");
  return value;
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  PTYCHO_CHECK(end != nullptr && *end == '\0', "option --" << key << " expects a number, got '"
                                                           << it->second << "'");
  return value;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  PTYCHO_CHECK(false, "option --" << key << " expects a boolean, got '" << v << "'");
  return fallback;
}

std::vector<long long> Options::get_int_list(const std::string& key,
                                             const std::vector<long long>& fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<long long> out;
  const std::string& text = it->second;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    PTYCHO_CHECK(!token.empty(), "option --" << key << " has an empty list element");
    char* end = nullptr;
    out.push_back(std::strtoll(token.c_str(), &end, 10));
    PTYCHO_CHECK(end != nullptr && *end == '\0',
                 "option --" << key << " expects integers, got '" << token << "'");
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace ptycho
