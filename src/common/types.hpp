// Fundamental scalar types and constants used throughout the library.
//
// The reconstruction volume, probes and diffraction wavefields are all
// single-precision complex, matching the GPU implementation in the paper
// (V100 single-precision cuFFT path).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace ptycho {

/// Real scalar used for all physics and image arithmetic.
using real = float;

/// Complex scalar for wavefields, transmittance and gradients.
using cplx = std::complex<real>;

/// Signed index type for image coordinates (allows negative halo offsets).
using index_t = std::int64_t;

/// Unsigned size type for container extents.
using usize = std::size_t;

inline constexpr real kPi = real(3.14159265358979323846);
inline constexpr real kTwoPi = real(2) * kPi;

/// Imaginary unit as a `cplx`.
inline constexpr cplx kImag{real(0), real(1)};

/// Finite-math complex multiply: the textbook formula without the
/// inf/nan-recovery branch the compiler's __mulsc3 runtime call adds
/// around `cplx * cplx`. Every wavefield, transmittance and gradient in
/// the library is finite, and the runtime call serializes the hottest
/// loops (FFT butterflies, Hadamard products), so use this in kernels.
[[nodiscard]] inline cplx cmul(cplx a, cplx b) {
  return cplx(a.real() * b.real() - a.imag() * b.imag(),
              a.real() * b.imag() + a.imag() * b.real());
}

/// cmul(a, conj(b)) without materializing the conjugate.
[[nodiscard]] inline cplx cmul_conj(cplx a, cplx b) {
  return cplx(a.real() * b.real() + a.imag() * b.imag(),
              a.imag() * b.real() - a.real() * b.imag());
}

/// Bytes in one mebibyte / gibibyte, for memory reporting.
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * kMiB;

}  // namespace ptycho
