#include "common/random.hpp"

#include <cmath>
#include <cstring>

namespace ptycho {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction.
  const double value = normal(mean, std::sqrt(mean));
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t value = next_u64();
  while (value > limit) value = next_u64();
  return value % n;
}

RngState Rng::state() const {
  RngState out;
  for (int i = 0; i < 4; ++i) out.s[i] = state_[i];
  std::memcpy(&out.cached_normal_bits, &cached_normal_, sizeof cached_normal_);
  out.have_cached_normal = have_cached_normal_;
  return out;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  std::memcpy(&cached_normal_, &state.cached_normal_bits, sizeof cached_normal_);
  have_cached_normal_ = state.have_cached_normal;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64.
  std::uint64_t mix = state_[0] ^ (stream_id * 0xD2B74407B1CE6E93ULL + 0x8D26B2DCBA0F1B0BULL);
  return Rng(splitmix64(mix));
}

}  // namespace ptycho
