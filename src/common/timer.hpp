// Wall-clock timing utilities and a phase profiler.
//
// The phase profiler is what the runtime breakdown experiment (Fig. 7b in
// the paper) is built on: each rank accounts its time into named phases
// (compute / wait / communication) and the harness aggregates them.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

namespace ptycho {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time into named phases; one instance per rank.
///
/// Not itself thread-safe: add()/merge() must come from one thread at a
/// time. On cluster runs the totals are no longer accumulated here
/// directly — pass hooks (which may run on scheduler worker slots) time
/// themselves through obs::SpanScope into a per-rank obs::PhaseLedger of
/// padded atomics, and the ledger is merged into this profiler at chunk
/// boundaries from the rank's own thread (src/obs/trace.hpp). The Fig. 7b
/// breakdown is therefore span-derived; this class remains the stable
/// aggregation/reporting surface.
class PhaseProfiler {
 public:
  /// Add `seconds` to phase `name`.
  void add(const std::string& name, double seconds) { phases_[name] += seconds; }

  /// Total of one phase (0.0 if never recorded).
  [[nodiscard]] double total(const std::string& name) const {
    auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, double>& phases() const { return phases_; }

  /// Merge another profiler's phases into this one (for aggregation).
  void merge(const PhaseProfiler& other) {
    for (const auto& [name, secs] : other.phases_) phases_[name] += secs;
  }

  void clear() { phases_.clear(); }

 private:
  std::map<std::string, double> phases_;
};

/// RAII helper: times a scope into a profiler phase.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler& profiler, std::string name)
      : profiler_(profiler), name_(std::move(name)) {}
  ~ScopedPhase() { profiler_.add(name_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler& profiler_;
  std::string name_;
  WallTimer timer_;
};

/// Canonical phase names used by the solvers (keeps Fig. 7b keys consistent).
namespace phase {
inline constexpr const char* kCompute = "compute";
inline constexpr const char* kWait = "wait";
inline constexpr const char* kComm = "comm";
inline constexpr const char* kUpdate = "update";
inline constexpr const char* kCheckpoint = "checkpoint";
}  // namespace phase

}  // namespace ptycho
