// Aligned allocation with optional per-rank byte accounting.
//
// Every tensor in the library allocates through ptycho::tracked_alloc so
// that the virtual-cluster memory tracker (runtime/memtrack.hpp) can
// measure the exact per-rank footprint — the quantity reported in the
// "Memory footprint per GPU" rows of Tables II and III.
#pragma once

#include <cstddef>
#include <new>

namespace ptycho {

/// Alignment used for all numeric buffers (AVX-512 friendly, also a typical
/// cache-line multiple so tiles do not false-share).
inline constexpr std::size_t kBufferAlignment = 64;

/// Hooks a tracker can install for the calling thread. Both callbacks must
/// be noexcept; `nullptr` disables tracking (the default).
struct AllocHooks {
  void (*on_alloc)(void* ctx, std::size_t bytes) = nullptr;
  void (*on_free)(void* ctx, std::size_t bytes) = nullptr;
  void* ctx = nullptr;
};

/// Install hooks for the current thread; returns the previous hooks so a
/// caller can restore them (RAII wrapper in runtime/memtrack.hpp).
AllocHooks set_thread_alloc_hooks(const AllocHooks& hooks) noexcept;

/// Current thread's hooks (for save/restore).
AllocHooks thread_alloc_hooks() noexcept;

/// Allocate `bytes` with kBufferAlignment, reporting to the thread hooks.
/// Throws std::bad_alloc on failure. `bytes == 0` returns a non-null token.
void* tracked_alloc(std::size_t bytes);

/// Free memory from tracked_alloc; `bytes` must match the allocation size.
void tracked_free(void* p, std::size_t bytes) noexcept;

/// Process-wide counters (for leak checks in tests).
std::size_t live_tracked_bytes() noexcept;

}  // namespace ptycho
