// Deterministic random number generation.
//
// Everything stochastic in the reproduction (specimen synthesis, shot
// noise, initial guesses) flows through Rng so experiments are exactly
// repeatable from a seed printed in the harness output.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ptycho {

/// Complete serializable Rng state (checkpoint/restore): the xoshiro256**
/// words plus the Box–Muller cache, so a restored stream continues exactly
/// where the checkpointed one stopped.
struct RngState {
  std::uint64_t s[4] = {};
  std::uint64_t cached_normal_bits = 0;  ///< bit pattern of the cached normal
  bool have_cached_normal = false;
};

/// SplitMix64-seeded xoshiro256** generator. Small, fast, reproducible
/// across platforms (unlike std::normal_distribution, whose output is
/// implementation-defined — we implement our own transforms).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64 — adequate for shot-noise simulation).
  std::uint64_t poisson(double mean);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Derive an independent stream (for per-rank reproducibility).
  Rng split(std::uint64_t stream_id) const;

  /// Snapshot / restore the full generator state (checkpointing).
  [[nodiscard]] RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ptycho
