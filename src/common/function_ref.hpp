// function_ref: a non-owning, non-allocating callable reference.
//
// The sweep hot path hands two per-item callbacks (probe-id and
// measurement lookup) through every batch dispatch; std::function there
// costs a potential heap allocation per construction and a double
// indirection per call. function_ref is two words — a type-erased object
// pointer plus a trampoline — so passing a lambda costs nothing and each
// call is one indirect call.
//
// Lifetime contract: function_ref never extends the referenced callable's
// lifetime. Bind only callables that outlive every invocation — in
// practice, pass it down a synchronous call chain and never store it
// beyond the call (the schedulers and BatchSweeper obey this).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace ptycho {

template <class Signature>
class function_ref;  // primary template left undefined

template <class R, class... Args>
class function_ref<R(Args...)> {
 public:
  function_ref() = default;

  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, function_ref> &&
                                     std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like string_view
  function_ref(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace ptycho
