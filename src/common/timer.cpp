#include "common/timer.hpp"

// All members are defined inline in the header; this translation unit
// exists so the module shows up as a distinct object in the archive and
// gives the header a home for future out-of-line additions.

namespace ptycho {}
