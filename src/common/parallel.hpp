// Intra-rank parallel execution: a reusable thread pool with a static,
// thread-count-independent work partition.
//
// The pool exists so the per-probe gradient sweep (the hot path of every
// solver) can scale with cores *without* changing results: parallel_for
// hands item i to a fixed slot derived only from (range, slot count), and
// callers that need a reduction merge per-item results in ascending item
// order — see core/sweep.hpp for the canonical pattern. Worker threads
// temporarily adopt the submitting thread's allocation hooks, so tensor
// allocations made inside a parallel region are charged to the owning
// virtual-cluster rank exactly as sequential allocations are.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/memory.hpp"
#include "common/types.hpp"

namespace ptycho {

class ThreadPool {
 public:
  /// A pool that runs work on `threads` slots (>= 1). `threads == 0` uses
  /// hardware_threads(). One slot runs on the calling thread, so a pool of
  /// 1 spawns no workers and parallel_for degenerates to a plain loop.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution slots (worker threads + the calling thread).
  [[nodiscard]] int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads();

  /// Run fn(i, slot) for every i in [begin, end). The range is split into
  /// contiguous blocks, one per slot; slot s runs items
  /// [begin + s*chunk, begin + (s+1)*chunk) with chunk = ceil(n/slots).
  /// `slot` (in [0, threads())) identifies the per-worker scratch the call
  /// may use. Blocks until every item ran; the first exception thrown by
  /// any item is rethrown on the caller after the region completes.
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t item, int slot)>& fn);

 private:
  struct Region {
    const std::function<void(index_t, int)>* fn = nullptr;
    index_t begin = 0;
    index_t end = 0;
    index_t chunk = 0;
    AllocHooks hooks;  ///< submitting thread's hooks, adopted by workers
  };

  void worker_loop(int slot);
  void run_slot(const Region& region, int slot);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Region region_;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for
  int pending_ = 0;               ///< workers still running the generation
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ptycho
