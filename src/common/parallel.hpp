// Intra-rank parallel execution: a reusable thread pool plus the pluggable
// sweep schedulers that decide how a batch of independent items is divided
// across the pool's slots.
//
// The pool exists so the per-probe gradient sweep (the hot path of every
// solver) can scale with cores *without* changing results. Two scheduling
// policies implement the SweepScheduler interface:
//
//  * StaticScheduler — parallel_for's fixed partition: item i runs on a
//    slot derived only from (range, slot count). Zero coordination, but a
//    straggler slot serializes the tail.
//  * WorkStealingScheduler — each slot starts with the same contiguous
//    block and, when it runs dry, steals the back half of a victim's
//    remaining range (lock-free packed-range CAS). Load-balances uneven
//    per-item cost at the price of a few atomics per chunk.
//
// Both are deterministic where it matters: they only decide WHICH slot
// computes an item, never the order results are combined — callers that
// need a reduction merge per-item results in ascending item order (see
// core/sweep.hpp for the canonical pattern), so reconstructions are
// bitwise identical across schedulers AND thread counts. Worker threads
// temporarily adopt the submitting thread's allocation hooks, so tensor
// allocations made inside a parallel region are charged to the owning
// virtual-cluster rank exactly as sequential allocations are.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/function_ref.hpp"
#include "common/memory.hpp"
#include "common/types.hpp"
#include "obs/trace.hpp"

namespace ptycho {

class ThreadPool {
 public:
  /// A pool that runs work on `threads` slots (>= 1). `threads == 0` uses
  /// hardware_threads(). One slot runs on the calling thread, so a pool of
  /// 1 spawns no workers and parallel_for degenerates to a plain loop.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution slots (worker threads + the calling thread).
  [[nodiscard]] int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads();

  /// Run fn(i, slot) for every i in [begin, end). The range is split into
  /// contiguous blocks, one per slot; slot s runs items
  /// [begin + s*chunk, begin + (s+1)*chunk) with chunk = ceil(n/slots).
  /// `slot` (in [0, threads())) identifies the per-worker scratch the call
  /// may use. Blocks until every item ran; the first exception thrown by
  /// any item is rethrown on the caller after the region completes. The
  /// callable only needs to live for the duration of the call.
  void parallel_for(index_t begin, index_t end, function_ref<void(index_t item, int slot)> fn);

 private:
  struct Region {
    function_ref<void(index_t, int)> fn;
    index_t begin = 0;
    index_t end = 0;
    index_t chunk = 0;
    AllocHooks hooks;        ///< submitting thread's hooks, adopted by workers
    obs::ThreadContext octx;  ///< submitting thread's obs identity, ditto
  };

  void worker_loop(int slot);
  void run_slot(const Region& region, int slot);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Region region_;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for
  int pending_ = 0;               ///< workers still running the generation
  bool stop_ = false;
  std::exception_ptr first_error_;
};

// ---- background slot --------------------------------------------------------

/// Completion handle for one task submitted to a BackgroundWorker.
/// Default-constructed tickets are empty (valid() == false).
class BackgroundTicket {
 public:
  BackgroundTicket() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// True once the task has run (successfully or not). Non-blocking.
  [[nodiscard]] bool done() const;

  /// Block until the task finishes; rethrows the exception it threw, if
  /// any. Safe to call repeatedly (an error rethrows each time).
  void wait();

 private:
  friend class BackgroundWorker;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
  };
  explicit BackgroundTicket(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// One background execution slot: a single worker thread draining a FIFO
/// of submitted tasks. Each task adopts the submitting thread's allocation
/// hooks, observability identity and log rank for its duration (the same
/// propagation ThreadPool regions perform), so background work — e.g. a
/// checkpoint shard write lifted off the rank lane — is still charged and
/// attributed to the owning virtual-cluster rank.
///
/// Tasks run strictly in submission order; the queue is unbounded.
/// Exceptions are captured into the task's ticket and rethrown by wait();
/// tasks nobody waits on have their errors dropped at destruction.
class BackgroundWorker {
 public:
  BackgroundWorker();
  /// Drains the queue (pending tasks still run to completion), then joins.
  ~BackgroundWorker();

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  [[nodiscard]] BackgroundTicket submit(std::function<void()> task);

 private:
  struct Job {
    std::function<void()> fn;
    std::shared_ptr<BackgroundTicket::State> state;
    AllocHooks hooks;         ///< submitting thread's hooks, adopted for the task
    obs::ThreadContext octx;  ///< submitting thread's obs identity, ditto
  };

  void loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  std::thread thread_;
};

// ---- sweep scheduling -------------------------------------------------------

/// Which SweepScheduler a solver's batched gradient sweep dispatches
/// through. Output is bitwise identical across all of them (the
/// item-indexed merge contract); the choice is purely a load-balancing
/// knob.
enum class SweepSchedule {
  kStatic,        ///< fixed contiguous partition (parallel_for)
  kWorkStealing,  ///< chunked self-scheduling with back-half stealing
  kAuto,          ///< measure first-dispatch per-item cost, then pick one
};

[[nodiscard]] const char* to_string(SweepSchedule schedule);

/// Parse "static" / "work-stealing" (also accepts "ws") / "auto"; throws
/// on others.
[[nodiscard]] SweepSchedule sweep_schedule_from_string(const std::string& name);

/// How a batch of independent, identically-merged items is divided across
/// a pool's slots. Implementations guarantee: fn(i, slot) runs exactly
/// once per item, slot is in [0, slots()), and the call blocks until every
/// item ran (exceptions propagate per ThreadPool::parallel_for). They
/// never combine results — callers own the (item-ordered) reduction, which
/// is what keeps every scheduler bitwise-equivalent.
class SweepScheduler {
 public:
  virtual ~SweepScheduler() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Execution slots; callers size per-slot scratch (e.g. workspaces) off
  /// this.
  [[nodiscard]] virtual int slots() const = 0;

  /// Run fn(i, slot) for every i in [begin, end).
  virtual void dispatch(index_t begin, index_t end,
                        function_ref<void(index_t item, int slot)> fn) = 0;
};

/// The historical policy: ThreadPool::parallel_for's static partition.
class StaticScheduler final : public SweepScheduler {
 public:
  explicit StaticScheduler(ThreadPool& pool) : pool_(pool) {}

  [[nodiscard]] const char* name() const override { return "static"; }
  [[nodiscard]] int slots() const override { return pool_.threads(); }
  void dispatch(index_t begin, index_t end,
                function_ref<void(index_t, int)> fn) override {
    pool_.parallel_for(begin, end, fn);
  }

 private:
  ThreadPool& pool_;
};

/// Chunked work-stealing over the same pool. Every slot starts with the
/// static partition's contiguous block, pops `chunk` items at a time from
/// its front, and — once dry — scans the other slots in rotation order and
/// steals the back half of the first non-empty victim range it finds.
/// Ranges are packed {lo,hi} in one 64-bit atomic, so both
/// the owner's pop and a thief's steal are single CAS operations and the
/// two ends never contend on the same boundary until a range is nearly
/// empty.
class WorkStealingScheduler final : public SweepScheduler {
 public:
  /// `chunk` is the owner-pop granularity (and the minimum steal size);
  /// 1 maximizes balance, larger values amortize the CAS per item.
  explicit WorkStealingScheduler(ThreadPool& pool, index_t chunk = 1);

  [[nodiscard]] const char* name() const override { return "work-stealing"; }
  [[nodiscard]] int slots() const override { return pool_.threads(); }
  void dispatch(index_t begin, index_t end,
                function_ref<void(index_t, int)> fn) override;

 private:
  struct alignas(64) PackedRange {  // one cache line per slot: no false sharing
    std::atomic<std::uint64_t> bits{0};
  };

  ThreadPool& pool_;
  index_t chunk_;
  std::unique_ptr<PackedRange[]> ranges_;
};

/// Measures per-item cost on the first dispatches (through the static
/// partition, so results are identical to a static run), then delegates
/// every later dispatch to either scheduler: work-stealing when the
/// per-item cost's coefficient of variation exceeds kCvThreshold (spread
/// a static partition cannot absorb), static otherwise. The timing never
/// changes WHAT is computed — only which slot runs an item — so the
/// bitwise contract holds through the sampling window and after it.
class AutoScheduler final : public SweepScheduler {
 public:
  /// Items timed before committing to a policy (~2 batches of the sweep).
  static constexpr index_t kMinSamples = 32;
  /// Relative per-item cost stddev above which stealing pays for its CAS.
  static constexpr double kCvThreshold = 0.25;

  explicit AutoScheduler(ThreadPool& pool);

  [[nodiscard]] const char* name() const override;
  [[nodiscard]] int slots() const override { return pool_.threads(); }
  void dispatch(index_t begin, index_t end,
                function_ref<void(index_t, int)> fn) override;

  /// The delegate committed to after the sampling window (null while still
  /// sampling). Exposed for tests and introspection.
  [[nodiscard]] const SweepScheduler* decided() const { return decided_; }

 private:
  void decide();

  ThreadPool& pool_;
  StaticScheduler static_;
  std::unique_ptr<WorkStealingScheduler> stealing_;
  SweepScheduler* decided_ = nullptr;
  std::vector<std::uint64_t> sample_ns_;  ///< per-item durations, item-indexed
};

/// Factory used by the solver layer (config enum -> scheduler instance).
[[nodiscard]] std::unique_ptr<SweepScheduler> make_sweep_scheduler(SweepSchedule schedule,
                                                                   ThreadPool& pool);

}  // namespace ptycho
