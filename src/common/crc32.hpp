// CRC-32 (IEEE 802.3 polynomial), incremental, table-driven.
//
// One implementation shared by the two on-the-wire/on-disk integrity
// layers: socket frame checksums (runtime/socket_transport.cpp) and
// checkpoint file checksums (ckpt/serialize.cpp). The CRC is defined over
// the byte stream, so it is endian-stable wherever the bytes themselves
// are (the checkpoint format encodes scalars explicitly little-endian).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ptycho {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// CRC-32 of `n` bytes at `data`, chained: pass a previous call's return
/// value as `crc` to extend the checksum over a split buffer (the default
/// 0 starts a fresh stream).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n,
                                         std::uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i) {
    crc = detail::kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ptycho
