#include "common/parallel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace ptycho {

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads == 0) threads = hardware_threads();
  PTYCHO_REQUIRE(threads >= 1, "thread pool needs at least one slot");
  workers_.reserve(static_cast<usize>(threads - 1));
  for (int s = 1; s < threads; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_slot(const Region& region, int slot) {
  const index_t lo = region.begin + static_cast<index_t>(slot) * region.chunk;
  const index_t hi = std::min(region.end, lo + region.chunk);
  for (index_t i = lo; i < hi; ++i) region.fn(i, slot);
}

void ThreadPool::worker_loop(int slot) {
  std::uint64_t seen = 0;
  for (;;) {
    Region region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      region = region_;
    }
    // Account this worker's allocations to the submitting thread's tracker
    // (per-rank device-memory accounting must not depend on thread count),
    // and adopt its observability identity so spans emitted inside the
    // region carry the owning rank and phase time lands in its ledger.
    const AllocHooks previous = set_thread_alloc_hooks(region.hooks);
    const obs::ThreadContext prev_octx = obs::set_thread_context(region.octx);
    const int prev_rank = log::set_thread_rank(region.octx.rank);
    std::exception_ptr error;
    try {
      run_slot(region, slot);
    } catch (...) {
      error = std::current_exception();
    }
    log::set_thread_rank(prev_rank);
    obs::set_thread_context(prev_octx);
    set_thread_alloc_hooks(previous);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(index_t begin, index_t end, function_ref<void(index_t, int)> fn) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto slots = static_cast<index_t>(threads());
  if (slots == 1 || n == 1) {
    for (index_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  Region region;
  region.fn = fn;
  region.begin = begin;
  region.end = end;
  region.chunk = (n + slots - 1) / slots;
  region.hooks = thread_alloc_hooks();
  region.octx = obs::thread_context();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = region;
    first_error_ = nullptr;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is slot 0 — it works instead of idling while workers run.
  std::exception_ptr caller_error;
  try {
    run_slot(region, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  std::exception_ptr error = caller_error != nullptr ? caller_error : first_error_;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

// ---- background slot --------------------------------------------------------

bool BackgroundTicket::done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void BackgroundTicket::wait() {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error != nullptr) std::rethrow_exception(state_->error);
}

BackgroundWorker::BackgroundWorker() : thread_([this] { loop(); }) {}

BackgroundWorker::~BackgroundWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

BackgroundTicket BackgroundWorker::submit(std::function<void()> task) {
  PTYCHO_REQUIRE(task != nullptr, "cannot submit an empty background task");
  auto state = std::make_shared<BackgroundTicket::State>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PTYCHO_REQUIRE(!stop_, "background worker is shutting down");
    queue_.push_back(Job{std::move(task), state, thread_alloc_hooks(), obs::thread_context()});
  }
  work_cv_.notify_all();
  return BackgroundTicket(std::move(state));
}

void BackgroundWorker::loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Same adoption dance as ThreadPool::worker_loop: charge allocations
    // and attribute spans/logs to the submitting rank.
    const AllocHooks previous = set_thread_alloc_hooks(job.hooks);
    const obs::ThreadContext prev_octx = obs::set_thread_context(job.octx);
    const int prev_rank = log::set_thread_rank(job.octx.rank);
    std::exception_ptr error;
    try {
      job.fn();
    } catch (...) {
      error = std::current_exception();
    }
    log::set_thread_rank(prev_rank);
    obs::set_thread_context(prev_octx);
    set_thread_alloc_hooks(previous);
    {
      std::lock_guard<std::mutex> lock(job.state->mutex);
      job.state->done = true;
      job.state->error = error;
    }
    job.state->cv.notify_all();
  }
}

// ---- sweep scheduling -------------------------------------------------------

const char* to_string(SweepSchedule schedule) {
  switch (schedule) {
    case SweepSchedule::kStatic: return "static";
    case SweepSchedule::kWorkStealing: return "work-stealing";
    case SweepSchedule::kAuto: return "auto";
  }
  return "?";
}

SweepSchedule sweep_schedule_from_string(const std::string& name) {
  if (name == "static") return SweepSchedule::kStatic;
  if (name == "auto") return SweepSchedule::kAuto;
  PTYCHO_CHECK(name == "work-stealing" || name == "ws",
               "unknown sweep scheduler '" << name << "' (want static|work-stealing|auto)");
  return SweepSchedule::kWorkStealing;
}

namespace {

constexpr std::uint64_t pack_range(std::uint64_t lo, std::uint64_t hi) {
  return (lo << 32) | hi;
}
constexpr index_t range_lo(std::uint64_t bits) { return static_cast<index_t>(bits >> 32); }
constexpr index_t range_hi(std::uint64_t bits) {
  return static_cast<index_t>(bits & 0xffffffffu);
}

}  // namespace

WorkStealingScheduler::WorkStealingScheduler(ThreadPool& pool, index_t chunk)
    : pool_(pool), chunk_(std::max<index_t>(1, chunk)) {
  ranges_ = std::make_unique<PackedRange[]>(static_cast<usize>(pool_.threads()));
}

void WorkStealingScheduler::dispatch(index_t begin, index_t end,
                                     function_ref<void(index_t, int)> fn) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto nslots = static_cast<index_t>(slots());
  if (nslots == 1 || n == 1) {
    for (index_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  // Ranges are packed as two 32-bit halves; sweep batches are tiny (a
  // handful of probes per dispatch), so this bound is structural only.
  PTYCHO_REQUIRE(n < (index_t{1} << 31), "work-stealing range exceeds 2^31 items");

  // Seed each slot with the static partition's block, offsets in [0, n).
  const index_t block = (n + nslots - 1) / nslots;
  for (index_t s = 0; s < nslots; ++s) {
    const index_t lo = std::min(n, s * block);
    const index_t hi = std::min(n, lo + block);
    ranges_[static_cast<usize>(s)].bits.store(
        pack_range(static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi)),
        std::memory_order_relaxed);
  }

  const index_t chunk = chunk_;
  auto& ranges = ranges_;
  // Flags are sampled once per dispatch so the hot loops below pay a plain
  // bool test, not an atomic load per chunk.
  const bool count = obs::metrics_enabled();
  const bool traced = obs::tracing_enabled();
  std::atomic<std::uint64_t> pops{0};
  std::atomic<std::uint64_t> steals{0};
  const auto worker = [&ranges, nslots, chunk, begin, fn, count, traced, &pops,
                       &steals](index_t s, int slot) {
    (void)s;  // with n == nslots parallel_for maps item s onto slot s
    // Drain our own block from the front, `chunk` items per CAS.
    auto& own = ranges[static_cast<usize>(slot)].bits;
    for (;;) {
      std::uint64_t bits = own.load(std::memory_order_acquire);
      const index_t lo = range_lo(bits);
      const index_t hi = range_hi(bits);
      if (lo >= hi) break;
      const index_t take = std::min(chunk, hi - lo);
      if (!own.compare_exchange_weak(
              bits, pack_range(static_cast<std::uint64_t>(lo + take),
                               static_cast<std::uint64_t>(hi)),
              std::memory_order_acq_rel)) {
        continue;  // a thief moved hi (or a retry raced); re-read
      }
      if (count) pops.fetch_add(1, std::memory_order_relaxed);
      for (index_t i = lo; i < lo + take; ++i) fn(begin + i, slot);
    }
    // Steal: scan the other slots until a full pass finds everyone dry.
    // Thieves take the back half (at least `chunk`), leaving the owner's
    // front-pop end untouched — owner and thief only collide on the CAS
    // when a range is nearly empty.
    for (;;) {
      bool any_left = false;
      for (index_t k = 1; k < nslots; ++k) {
        const index_t victim = (static_cast<index_t>(slot) + k) % nslots;
        auto& bits_ref = ranges[static_cast<usize>(victim)].bits;
        std::uint64_t bits = bits_ref.load(std::memory_order_acquire);
        const index_t lo = range_lo(bits);
        const index_t hi = range_hi(bits);
        if (lo >= hi) continue;
        any_left = true;
        const index_t remaining = hi - lo;
        const index_t take = std::min(remaining, std::max(chunk, remaining / 2));
        const index_t new_hi = hi - take;
        if (!bits_ref.compare_exchange_weak(
                bits, pack_range(static_cast<std::uint64_t>(lo),
                                 static_cast<std::uint64_t>(new_hi)),
                std::memory_order_acq_rel)) {
          continue;  // raced; the rescan will retry this victim
        }
        if (count) steals.fetch_add(1, std::memory_order_relaxed);
        if (traced) obs::instant("steal");
        for (index_t i = new_hi; i < hi; ++i) fn(begin + i, slot);
      }
      if (!any_left) return;
    }
  };
  // One "item" per slot: parallel_for's static map runs worker s on slot s,
  // reusing the pool's alloc-hook propagation and exception rethrow.
  pool_.parallel_for(0, nslots, worker);
  if (count) {
    static obs::Counter& pop_counter = obs::registry().counter("scheduler_pops_total");
    static obs::Counter& steal_counter = obs::registry().counter("scheduler_steals_total");
    pop_counter.add(pops.load(std::memory_order_relaxed));
    steal_counter.add(steals.load(std::memory_order_relaxed));
  }
}

AutoScheduler::AutoScheduler(ThreadPool& pool) : pool_(pool), static_(pool) {
  // One slot makes the choice moot (both degenerate to a plain loop);
  // skip the sampling window and its two clock reads per item.
  if (pool_.threads() == 1) decided_ = &static_;
}

const char* AutoScheduler::name() const {
  if (decided_ == nullptr) return "auto";
  return decided_ == &static_ ? "auto:static" : "auto:work-stealing";
}

void AutoScheduler::dispatch(index_t begin, index_t end, function_ref<void(index_t, int)> fn) {
  if (decided_ != nullptr) {
    decided_->dispatch(begin, end, fn);
    return;
  }
  const index_t n = end - begin;
  if (n <= 0) return;
  // Sampling window: run through the static partition (identical slot map
  // to a committed static choice) while timing each item. Durations are
  // item-indexed — every thread writes distinct elements, and the pool
  // join orders those writes before the read in decide().
  const usize base = sample_ns_.size();
  sample_ns_.resize(base + static_cast<usize>(n));
  std::uint64_t* out = sample_ns_.data() + base;
  static_.dispatch(begin, end, [&](index_t i, int slot) {
    const std::uint64_t t0 = obs::now_ns();
    fn(i, slot);
    out[i - begin] = obs::now_ns() - t0;
  });
  if (sample_ns_.size() >= static_cast<usize>(kMinSamples)) decide();
}

void AutoScheduler::decide() {
  double mean = 0.0;
  for (const std::uint64_t ns : sample_ns_) mean += static_cast<double>(ns);
  mean /= static_cast<double>(sample_ns_.size());
  double var = 0.0;
  for (const std::uint64_t ns : sample_ns_) {
    const double d = static_cast<double>(ns) - mean;
    var += d * d;
  }
  var /= static_cast<double>(sample_ns_.size());
  const double cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
  if (cv > kCvThreshold) {
    stealing_ = std::make_unique<WorkStealingScheduler>(pool_);
    decided_ = stealing_.get();
  } else {
    decided_ = &static_;
  }
  if (obs::metrics_enabled()) {
    obs::registry().gauge("scheduler_auto_cv").set(cv);
    obs::registry().gauge("scheduler_auto_work_stealing").set(decided_ == &static_ ? 0.0 : 1.0);
  }
  sample_ns_.clear();
  sample_ns_.shrink_to_fit();
}

std::unique_ptr<SweepScheduler> make_sweep_scheduler(SweepSchedule schedule, ThreadPool& pool) {
  switch (schedule) {
    case SweepSchedule::kStatic: return std::make_unique<StaticScheduler>(pool);
    case SweepSchedule::kWorkStealing: return std::make_unique<WorkStealingScheduler>(pool);
    case SweepSchedule::kAuto: return std::make_unique<AutoScheduler>(pool);
  }
  PTYCHO_UNREACHABLE("unknown sweep schedule");
}

}  // namespace ptycho
