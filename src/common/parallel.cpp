#include "common/parallel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ptycho {

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads == 0) threads = hardware_threads();
  PTYCHO_REQUIRE(threads >= 1, "thread pool needs at least one slot");
  workers_.reserve(static_cast<usize>(threads - 1));
  for (int s = 1; s < threads; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_slot(const Region& region, int slot) {
  const index_t lo = region.begin + static_cast<index_t>(slot) * region.chunk;
  const index_t hi = std::min(region.end, lo + region.chunk);
  for (index_t i = lo; i < hi; ++i) (*region.fn)(i, slot);
}

void ThreadPool::worker_loop(int slot) {
  std::uint64_t seen = 0;
  for (;;) {
    Region region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      region = region_;
    }
    // Account this worker's allocations to the submitting thread's tracker
    // (per-rank device-memory accounting must not depend on thread count).
    const AllocHooks previous = set_thread_alloc_hooks(region.hooks);
    std::exception_ptr error;
    try {
      run_slot(region, slot);
    } catch (...) {
      error = std::current_exception();
    }
    set_thread_alloc_hooks(previous);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(index_t begin, index_t end,
                              const std::function<void(index_t, int)>& fn) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto slots = static_cast<index_t>(threads());
  if (slots == 1 || n == 1) {
    for (index_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  Region region;
  region.fn = &fn;
  region.begin = begin;
  region.end = end;
  region.chunk = (n + slots - 1) / slots;
  region.hooks = thread_alloc_hooks();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = region;
    first_error_ = nullptr;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is slot 0 — it works instead of idling while workers run.
  std::exception_ptr caller_error;
  try {
    run_slot(region, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  std::exception_ptr error = caller_error != nullptr ? caller_error : first_error_;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace ptycho
