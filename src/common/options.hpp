// Tiny command-line option parser for the benches and examples.
//
// Supports `--key value`, `--key=value` and boolean `--flag` forms plus
// typed accessors with defaults; unknown keys are collected so a harness
// can reject typos.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ptycho {

class Options {
 public:
  Options() = default;

  /// Parse argv; throws ptycho::Error on malformed input.
  static Options parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. --gpus 6,24,54.
  [[nodiscard]] std::vector<long long> get_int_list(const std::string& key,
                                                    const std::vector<long long>& fallback) const;

  /// Keys seen on the command line (for validation / echo).
  [[nodiscard]] const std::map<std::string, std::string>& values() const { return values_; }

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Set a value programmatically (examples use this to build configs).
  void set(const std::string& key, const std::string& value) { values_[key] = value; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ptycho
