#include "common/memory.hpp"

#include <atomic>
#include <cstdlib>

namespace ptycho {

namespace {
thread_local AllocHooks t_hooks{};
std::atomic<std::size_t> g_live_bytes{0};
}  // namespace

AllocHooks set_thread_alloc_hooks(const AllocHooks& hooks) noexcept {
  AllocHooks previous = t_hooks;
  t_hooks = hooks;
  return previous;
}

AllocHooks thread_alloc_hooks() noexcept { return t_hooks; }

void* tracked_alloc(std::size_t bytes) {
  // Round the size up to the alignment: std::aligned_alloc requires it and
  // it keeps adjacent buffers from sharing a cache line.
  std::size_t padded = (bytes + kBufferAlignment - 1) / kBufferAlignment * kBufferAlignment;
  if (padded == 0) padded = kBufferAlignment;
  void* p = std::aligned_alloc(kBufferAlignment, padded);
  if (p == nullptr) throw std::bad_alloc();
  g_live_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (t_hooks.on_alloc != nullptr) t_hooks.on_alloc(t_hooks.ctx, bytes);
  return p;
}

void tracked_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  if (t_hooks.on_free != nullptr) t_hooks.on_free(t_hooks.ctx, bytes);
  std::free(p);
}

std::size_t live_tracked_bytes() noexcept { return g_live_bytes.load(std::memory_order_relaxed); }

}  // namespace ptycho
