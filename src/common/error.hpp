// Error handling: a library-wide exception type and check macros.
//
// Following the C++ Core Guidelines (E.2/E.3) we throw exceptions for
// violated preconditions and unrecoverable runtime failures rather than
// returning error codes; all throwing paths go through ptycho::Error so
// callers can catch one type.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ptycho {

/// Exception type thrown by all PTYCHO_CHECK/PTYCHO_REQUIRE failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ptycho

/// Check a runtime condition; throws ptycho::Error with context on failure.
#define PTYCHO_CHECK(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream ptycho_os_;                                       \
      ptycho_os_ << "check failed: " #cond " — " << msg;                   \
      ::ptycho::detail::throw_error(__FILE__, __LINE__, ptycho_os_.str()); \
    }                                                                      \
  } while (0)

/// Precondition check for public API entry points.
#define PTYCHO_REQUIRE(cond, msg) PTYCHO_CHECK(cond, "precondition: " << msg)

/// Unconditional failure with a streamed message (bad input, not a bug).
#define PTYCHO_FAIL(msg)                                                 \
  do {                                                                   \
    std::ostringstream ptycho_os_;                                       \
    ptycho_os_ << msg;                                                   \
    ::ptycho::detail::throw_error(__FILE__, __LINE__, ptycho_os_.str()); \
  } while (0)

/// Unreachable marker for exhaustive switches.
#define PTYCHO_UNREACHABLE(msg) \
  ::ptycho::detail::throw_error(__FILE__, __LINE__, std::string("unreachable: ") + (msg))
