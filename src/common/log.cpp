#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

namespace ptycho::log {

namespace {
std::atomic<int> g_threshold{static_cast<int>(Level::kInfo)};
std::mutex g_emit_mutex;
Sink g_sink;  // guarded by g_emit_mutex

thread_local int t_rank = -1;

const char* prefix(Level level) {
  switch (level) {
    case Level::kDebug: return "[debug] ";
    case Level::kInfo: return "[info ] ";
    case Level::kWarn: return "[warn ] ";
    case Level::kError: return "[error] ";
    case Level::kOff: return "";
  }
  return "";
}

/// Seconds since the first emission (monotonic clock); keeps lines
/// correlatable with trace timestamps without wall-clock skew.
double uptime_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch).count();
}

std::string format_line(Level level, const std::string& message) {
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "[%9.3fs] ", uptime_seconds());
  std::string line = stamp;
  line += prefix(level);
  if (t_rank >= 0) {
    char rank[16];
    std::snprintf(rank, sizeof rank, "[r%d] ", t_rank);
    line += rank;
  }
  line += message;
  return line;
}

}  // namespace

Level threshold() noexcept { return static_cast<Level>(g_threshold.load(std::memory_order_relaxed)); }

void set_threshold(Level level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

int set_thread_rank(int rank) noexcept {
  const int previous = t_rank;
  t_rank = rank;
  return previous;
}

int thread_rank() noexcept { return t_rank; }

void set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

void emit(Level level, const std::string& message) {
  if (static_cast<int>(level) < g_threshold.load(std::memory_order_relaxed)) return;
  const std::string line = format_line(level, message);
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  // Diagnostics (Warn/Error) go to stderr; progress/info shares stdout
  // with the program's own output.
  std::ostream& os = (level >= Level::kWarn) ? std::cerr : std::cout;
  os << line << '\n';
  os.flush();
}

}  // namespace ptycho::log
