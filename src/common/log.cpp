#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace ptycho::log {

namespace {
std::atomic<int> g_threshold{static_cast<int>(Level::kInfo)};
std::mutex g_emit_mutex;

const char* prefix(Level level) {
  switch (level) {
    case Level::kDebug: return "[debug] ";
    case Level::kInfo: return "[info ] ";
    case Level::kWarn: return "[warn ] ";
    case Level::kError: return "[error] ";
    case Level::kOff: return "";
  }
  return "";
}
}  // namespace

Level threshold() noexcept { return static_cast<Level>(g_threshold.load(std::memory_order_relaxed)); }

void set_threshold(Level level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void emit(Level level, const std::string& message) {
  if (static_cast<int>(level) < g_threshold.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::ostream& os = (level >= Level::kWarn) ? std::cerr : std::clog;
  os << prefix(level) << message << '\n';
}

}  // namespace ptycho::log
