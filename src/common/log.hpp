// Minimal leveled logger.
//
// Thread-safe (a single mutex around emission), cheap when the level is
// filtered out. Bench harnesses set the level from --verbose flags.
//
// Emitted lines carry a monotonic timestamp (seconds since the first
// emission), the level, and — on virtual-cluster rank threads — a rank
// tag: "[   1.042s] [info ] [r2] message". Debug/Info go to stdout,
// Warn/Error to stderr; tests can capture everything with set_sink()
// instead of scraping the process streams.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace ptycho::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold: messages below this level are dropped.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Thread-local rank tag included in emitted lines (-1 = no tag). The
/// virtual cluster installs the rank on each rank thread. Returns the
/// previous value so scopes can restore it.
int set_thread_rank(int rank) noexcept;
[[nodiscard]] int thread_rank() noexcept;

/// Replace stream output with `sink` (called with the level and the fully
/// formatted line, no trailing newline). An empty function restores the
/// default stdout/stderr routing. Threshold filtering still applies.
using Sink = std::function<void(Level level, const std::string& line)>;
void set_sink(Sink sink);

/// Emit one line at `level` (no-op if filtered). Adds the prefix.
void emit(Level level, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  ~LineStream() { emit(level_, os_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineStream debug() { return detail::LineStream(Level::kDebug); }
inline detail::LineStream info() { return detail::LineStream(Level::kInfo); }
inline detail::LineStream warn() { return detail::LineStream(Level::kWarn); }
inline detail::LineStream error() { return detail::LineStream(Level::kError); }

}  // namespace ptycho::log
