// Minimal leveled logger.
//
// Thread-safe (a single mutex around emission), cheap when the level is
// filtered out. Bench harnesses set the level from --verbose flags.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace ptycho::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold: messages below this level are dropped.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Emit one line at `level` (no-op if filtered). Adds a level prefix.
void emit(Level level, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  ~LineStream() { emit(level_, os_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineStream debug() { return detail::LineStream(Level::kDebug); }
inline detail::LineStream info() { return detail::LineStream(Level::kInfo); }
inline detail::LineStream warn() { return detail::LineStream(Level::kWarn); }
inline detail::LineStream error() { return detail::LineStream(Level::kError); }

}  // namespace ptycho::log
