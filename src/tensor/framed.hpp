// Framed arrays: dense tensors positioned inside the global image plane.
//
// A tile (extended with its halo) is stored as a FramedVolume: the Rect
// `frame` gives its position in global coordinates; the data array is its
// local storage. All decomposition-layer operations (gradient accumulation
// in overlap regions, halo pastes, stitching) address framed arrays by
// *global* rects, which keeps the coordinate arithmetic in one place.
#pragma once

#include <atomic>
#include <cstdint>

#include "tensor/array.hpp"
#include "tensor/region.hpp"

namespace ptycho {

namespace detail {
/// Process-unique, monotonically increasing revision tokens (never 0, so 0
/// can mean "nothing cached"). Unique per construction — a freed-and-
/// reallocated volume can never alias an older volume's token.
inline std::uint64_t next_volume_revision() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace detail

/// 2-D complex image positioned at `frame` in the global plane.
struct FramedImage {
  Rect frame;
  CArray2D data;

  FramedImage() = default;
  explicit FramedImage(const Rect& r) : frame(r), data(r.h, r.w) {}

  [[nodiscard]] cplx& at_global(index_t y, index_t x) {
    return data(y - frame.y0, x - frame.x0);
  }
  [[nodiscard]] const cplx& at_global(index_t y, index_t x) const {
    return data(y - frame.y0, x - frame.x0);
  }

  /// View of the intersection of `r` with this frame (local coordinates
  /// resolved internally). `r` must be fully inside the frame.
  [[nodiscard]] View2D<cplx> window(const Rect& r) {
    PTYCHO_CHECK(frame.contains(r), "window " << "outside frame");
    return data.sub(r.y0 - frame.y0, r.x0 - frame.x0, r.h, r.w);
  }
  [[nodiscard]] View2D<const cplx> window(const Rect& r) const {
    PTYCHO_CHECK(frame.contains(r), "window outside frame");
    return data.sub(r.y0 - frame.y0, r.x0 - frame.x0, r.h, r.w);
  }
};

/// 3-D complex volume whose x-y extent sits at `frame` in the global plane;
/// all slices share the frame (slices are along the beam axis z).
struct FramedVolume {
  Rect frame;
  CArray3D data;
  /// Content-revision token consumed by the transmittance cache
  /// (physics/multislice.hpp): unique at construction, and re-issued by
  /// bump_revision() — the invalidation hook apply_gradient calls after
  /// every in-place descent update. Code that mutates `data` through other
  /// paths between operator evaluations must bump it too (the cache is
  /// opt-in per workspace precisely so such paths can simply not opt in).
  std::uint64_t revision = detail::next_volume_revision();

  FramedVolume() = default;
  FramedVolume(index_t slices, const Rect& r) : frame(r), data(slices, r.h, r.w) {}

  /// Mark the voxel content as changed (fresh process-unique token).
  void bump_revision() { revision = detail::next_volume_revision(); }

  [[nodiscard]] index_t slices() const { return data.slices(); }

  [[nodiscard]] cplx& at_global(index_t s, index_t y, index_t x) {
    return data(s, y - frame.y0, x - frame.x0);
  }
  [[nodiscard]] const cplx& at_global(index_t s, index_t y, index_t x) const {
    return data(s, y - frame.y0, x - frame.x0);
  }

  /// Per-slice view of global rect `r` (must lie inside the frame).
  [[nodiscard]] View2D<cplx> window(index_t s, const Rect& r) {
    PTYCHO_CHECK(frame.contains(r), "window outside frame");
    return data.slice(s).sub(r.y0 - frame.y0, r.x0 - frame.x0, r.h, r.w);
  }
  [[nodiscard]] View2D<const cplx> window(index_t s, const Rect& r) const {
    PTYCHO_CHECK(frame.contains(r), "window outside frame");
    return data.slice(s).sub(r.y0 - frame.y0, r.x0 - frame.x0, r.h, r.w);
  }

  [[nodiscard]] FramedVolume clone() const {
    FramedVolume out;
    out.frame = frame;
    out.data = data.clone();
    return out;
  }
};

}  // namespace ptycho
