// Element-wise and region operations on views and framed tensors.
//
// These are the kernels the decomposition layer is made of: copy / add /
// replace of rectangular regions (gradient accumulation and halo pastes),
// axpy-style updates (gradient descent steps), reductions (cost values,
// norms) and message (de)serialization of framed sub-volumes.
#pragma once

#include <vector>

#include "tensor/framed.hpp"

namespace ptycho {

// ---- view-level region ops -------------------------------------------------

/// dst := src (shapes must match).
void copy(View2D<const cplx> src, View2D<cplx> dst);

/// dst += src.
void add(View2D<const cplx> src, View2D<cplx> dst);

/// dst += alpha * src.
void axpy(cplx alpha, View2D<const cplx> src, View2D<cplx> dst);

/// dst *= alpha.
void scale(cplx alpha, View2D<cplx> dst);

/// dst := value.
void fill(View2D<cplx> dst, cplx value);

/// Hadamard: dst(i) *= src(i).
void multiply_inplace(View2D<const cplx> src, View2D<cplx> dst);

/// dst(i) *= conj(src(i)).
void multiply_conj_inplace(View2D<const cplx> src, View2D<cplx> dst);

// ---- reductions -------------------------------------------------------------

/// Sum of |v|^2 over the view.
[[nodiscard]] double norm_sq(View2D<const cplx> v);

/// Max |v| over the view.
[[nodiscard]] double max_abs(View2D<const cplx> v);

/// Inner product <a, b> = sum conj(a) * b (the adjoint-test pairing).
[[nodiscard]] std::complex<double> dot(View2D<const cplx> a, View2D<const cplx> b);

/// Sum of |a - b|^2 (relative error helpers in tests are built on this).
[[nodiscard]] double diff_norm_sq(View2D<const cplx> a, View2D<const cplx> b);

// ---- framed-volume region ops ----------------------------------------------

/// For each slice: dst[r] += src[r], where r is a global rect contained in
/// both frames.
void add_region(const FramedVolume& src, FramedVolume& dst, const Rect& r);

/// For each slice: dst[r] := src[r].
void copy_region(const FramedVolume& src, FramedVolume& dst, const Rect& r);

/// Per-slice norm-squared over a global rect of a framed volume.
[[nodiscard]] double norm_sq_region(const FramedVolume& v, const Rect& r);

// ---- message payload (de)serialization ---------------------------------------

/// Pack global rect `r` (all slices) of `src` into a contiguous buffer laid
/// out slice-major. `r` must lie inside src.frame.
[[nodiscard]] std::vector<cplx> pack_region(const FramedVolume& src, const Rect& r);

/// dst[r] += payload (packed by pack_region with the same rect/slices).
void unpack_add_region(const std::vector<cplx>& payload, FramedVolume& dst, const Rect& r);

/// dst[r] := payload.
void unpack_replace_region(const std::vector<cplx>& payload, FramedVolume& dst, const Rect& r);

}  // namespace ptycho
