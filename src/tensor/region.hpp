// Axis-aligned rectangles in image coordinates.
//
// Rect is the vocabulary type of the whole decomposition layer: tile owned
// regions, extended (halo) regions, probe windows and pairwise overlap
// regions are all Rects in *global* image coordinates (row-major, y down,
// x right — the Fig. 1(b) convention of the paper).
#pragma once

#include <iosfwd>

#include "common/types.hpp"

namespace ptycho {

struct Rect {
  index_t y0 = 0;  ///< top row (inclusive)
  index_t x0 = 0;  ///< left column (inclusive)
  index_t h = 0;   ///< height in rows
  index_t w = 0;   ///< width in columns

  [[nodiscard]] constexpr index_t y1() const { return y0 + h; }  ///< exclusive bottom
  [[nodiscard]] constexpr index_t x1() const { return x0 + w; }  ///< exclusive right
  [[nodiscard]] constexpr bool empty() const { return h <= 0 || w <= 0; }
  [[nodiscard]] constexpr index_t area() const { return empty() ? 0 : h * w; }

  [[nodiscard]] constexpr bool contains(index_t y, index_t x) const {
    return y >= y0 && y < y1() && x >= x0 && x < x1();
  }
  [[nodiscard]] constexpr bool contains(const Rect& other) const {
    return other.empty() ||
           (other.y0 >= y0 && other.x0 >= x0 && other.y1() <= y1() && other.x1() <= x1());
  }

  [[nodiscard]] constexpr Rect shifted(index_t dy, index_t dx) const {
    return Rect{y0 + dy, x0 + dx, h, w};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection of two rects (empty Rect if disjoint).
[[nodiscard]] Rect intersect(const Rect& a, const Rect& b);

/// Smallest rect containing both (treats empty rects as identity).
[[nodiscard]] Rect bounding_union(const Rect& a, const Rect& b);

/// Grow a rect by `margin` on every side.
[[nodiscard]] Rect dilate(const Rect& r, index_t margin);

/// Clip `r` to the bounds rect.
[[nodiscard]] Rect clip(const Rect& r, const Rect& bounds);

/// True if the rects share at least one cell.
[[nodiscard]] bool overlaps(const Rect& a, const Rect& b);

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace ptycho
