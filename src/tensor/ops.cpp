#include "tensor/ops.hpp"

#include <cmath>

#include "backend/kernels.hpp"

namespace ptycho {

namespace {
void check_same_shape(View2D<const cplx> a, View2D<const cplx> b) {
  PTYCHO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "shape mismatch: " << a.rows() << "x" << a.cols() << " vs " << b.rows() << "x"
                                  << b.cols());
}
}  // namespace

void copy(View2D<const cplx> src, View2D<cplx> dst) {
  check_same_shape(src, dst);
  for (index_t y = 0; y < src.rows(); ++y) {
    const cplx* s = src.row(y);
    cplx* d = dst.row(y);
    std::copy_n(s, static_cast<usize>(src.cols()), d);
  }
}

void add(View2D<const cplx> src, View2D<cplx> dst) {
  check_same_shape(src, dst);
  for (index_t y = 0; y < src.rows(); ++y) {
    const cplx* s = src.row(y);
    cplx* d = dst.row(y);
    for (index_t x = 0; x < src.cols(); ++x) d[x] += s[x];
  }
}

void axpy(cplx alpha, View2D<const cplx> src, View2D<cplx> dst) {
  check_same_shape(src, dst);
  const backend::Kernels& kern = backend::kernels();
  for (index_t y = 0; y < src.rows(); ++y) {
    kern.axpy_lanes(dst.row(y), src.row(y), alpha, static_cast<usize>(src.cols()));
  }
}

void scale(cplx alpha, View2D<cplx> dst) {
  const backend::Kernels& kern = backend::kernels();
  for (index_t y = 0; y < dst.rows(); ++y) {
    cplx* d = dst.row(y);
    kern.scale_lanes(d, d, alpha, static_cast<usize>(dst.cols()));
  }
}

void fill(View2D<cplx> dst, cplx value) {
  for (index_t y = 0; y < dst.rows(); ++y) {
    cplx* d = dst.row(y);
    std::fill_n(d, static_cast<usize>(dst.cols()), value);
  }
}

void multiply_inplace(View2D<const cplx> src, View2D<cplx> dst) {
  check_same_shape(src, dst);
  const backend::Kernels& kern = backend::kernels();
  for (index_t y = 0; y < src.rows(); ++y) {
    cplx* d = dst.row(y);
    kern.cmul_lanes(d, d, src.row(y), static_cast<usize>(src.cols()));
  }
}

void multiply_conj_inplace(View2D<const cplx> src, View2D<cplx> dst) {
  check_same_shape(src, dst);
  const backend::Kernels& kern = backend::kernels();
  for (index_t y = 0; y < src.rows(); ++y) {
    cplx* d = dst.row(y);
    kern.cmul_conj_lanes(d, d, src.row(y), static_cast<usize>(src.cols()));
  }
}

double norm_sq(View2D<const cplx> v) {
  double acc = 0.0;
  for (index_t y = 0; y < v.rows(); ++y) {
    const cplx* row = v.row(y);
    for (index_t x = 0; x < v.cols(); ++x) {
      const double re = static_cast<double>(row[x].real());
      const double im = static_cast<double>(row[x].imag());
      acc += re * re + im * im;
    }
  }
  return acc;
}

double max_abs(View2D<const cplx> v) {
  double best = 0.0;
  for (index_t y = 0; y < v.rows(); ++y) {
    const cplx* row = v.row(y);
    for (index_t x = 0; x < v.cols(); ++x) {
      best = std::max(best, static_cast<double>(std::abs(row[x])));
    }
  }
  return best;
}

std::complex<double> dot(View2D<const cplx> a, View2D<const cplx> b) {
  check_same_shape(a, b);
  std::complex<double> acc{0.0, 0.0};
  for (index_t y = 0; y < a.rows(); ++y) {
    const cplx* ra = a.row(y);
    const cplx* rb = b.row(y);
    for (index_t x = 0; x < a.cols(); ++x) {
      acc += std::conj(std::complex<double>(ra[x])) * std::complex<double>(rb[x]);
    }
  }
  return acc;
}

double diff_norm_sq(View2D<const cplx> a, View2D<const cplx> b) {
  check_same_shape(a, b);
  double acc = 0.0;
  for (index_t y = 0; y < a.rows(); ++y) {
    const cplx* ra = a.row(y);
    const cplx* rb = b.row(y);
    for (index_t x = 0; x < a.cols(); ++x) {
      const cplx d = ra[x] - rb[x];
      const double re = static_cast<double>(d.real());
      const double im = static_cast<double>(d.imag());
      acc += re * re + im * im;
    }
  }
  return acc;
}

void add_region(const FramedVolume& src, FramedVolume& dst, const Rect& r) {
  if (r.empty()) return;
  PTYCHO_CHECK(src.slices() == dst.slices(), "slice count mismatch in add_region");
  for (index_t s = 0; s < src.slices(); ++s) {
    add(const_cast<FramedVolume&>(src).window(s, r), dst.window(s, r));
  }
}

void copy_region(const FramedVolume& src, FramedVolume& dst, const Rect& r) {
  if (r.empty()) return;
  PTYCHO_CHECK(src.slices() == dst.slices(), "slice count mismatch in copy_region");
  for (index_t s = 0; s < src.slices(); ++s) {
    copy(const_cast<FramedVolume&>(src).window(s, r), dst.window(s, r));
  }
}

double norm_sq_region(const FramedVolume& v, const Rect& r) {
  if (r.empty()) return 0.0;
  double acc = 0.0;
  for (index_t s = 0; s < v.slices(); ++s) acc += norm_sq(v.window(s, r));
  return acc;
}

std::vector<cplx> pack_region(const FramedVolume& src, const Rect& r) {
  PTYCHO_CHECK(src.frame.contains(r), "pack_region rect outside frame");
  std::vector<cplx> payload(static_cast<usize>(src.slices() * r.area()));
  usize offset = 0;
  for (index_t s = 0; s < src.slices(); ++s) {
    View2D<const cplx> win = src.window(s, r);
    for (index_t y = 0; y < r.h; ++y) {
      std::copy_n(win.row(y), static_cast<usize>(r.w), payload.data() + offset);
      offset += static_cast<usize>(r.w);
    }
  }
  return payload;
}

void unpack_add_region(const std::vector<cplx>& payload, FramedVolume& dst, const Rect& r) {
  PTYCHO_CHECK(dst.frame.contains(r), "unpack rect outside frame");
  PTYCHO_CHECK(payload.size() == static_cast<usize>(dst.slices() * r.area()),
               "payload size mismatch");
  usize offset = 0;
  for (index_t s = 0; s < dst.slices(); ++s) {
    View2D<cplx> win = dst.window(s, r);
    for (index_t y = 0; y < r.h; ++y) {
      cplx* row = win.row(y);
      for (index_t x = 0; x < r.w; ++x) row[x] += payload[offset + static_cast<usize>(x)];
      offset += static_cast<usize>(r.w);
    }
  }
}

void unpack_replace_region(const std::vector<cplx>& payload, FramedVolume& dst, const Rect& r) {
  PTYCHO_CHECK(dst.frame.contains(r), "unpack rect outside frame");
  PTYCHO_CHECK(payload.size() == static_cast<usize>(dst.slices() * r.area()),
               "payload size mismatch");
  usize offset = 0;
  for (index_t s = 0; s < dst.slices(); ++s) {
    View2D<cplx> win = dst.window(s, r);
    for (index_t y = 0; y < r.h; ++y) {
      std::copy_n(payload.data() + offset, static_cast<usize>(r.w), win.row(y));
      offset += static_cast<usize>(r.w);
    }
  }
}

}  // namespace ptycho
