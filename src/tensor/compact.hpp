// Compact (half-width) storage for read-mostly f32 arrays: bf16 and f16
// encode/decode between float and 16-bit payloads, halving the footprint
// and read bandwidth of the two biggest fast-tier arrays — measurement
// frames and the transmittance cache.
//
// Contract (tests/test_compact.cpp):
//  - bf16 encode is IEEE round-to-nearest-even truncation of the top 16
//    bits; decode (<<16) is exact. NaN payloads are quieted, never turned
//    into inf.
//  - f16 encode is IEEE binary16 round-to-nearest-even, bitwise identical
//    to the F16C hardware instruction (_mm256_cvtps_ph with
//    _MM_FROUND_TO_NEAREST_INT), including denormals, overflow-to-inf and
//    NaN quieting; decode is exact (every binary16 value is a float).
//  - The SIMD codec paths produce bitwise-identical output to the scalar
//    reference for every input bit pattern (same contract style as the
//    backend kernel tables).
//
// Encoding is monotone on ordered finite inputs and loses at most half a
// ULP of the destination format — which is why compact storage is a
// fast-tier (tolerance-gated) feature, never applied on the strict tier.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "tensor/array.hpp"

namespace ptycho::compact {

/// Storage format for a compacted array. kNone means "keep f32".
enum class Format { kNone, kBf16, kF16 };

[[nodiscard]] const char* format_name(Format f);

/// Function table for one codec implementation (scalar reference or the
/// vector path compiled for this architecture).
struct Codec {
  const char* name;
  void (*encode_bf16)(std::uint16_t* dst, const float* src, usize n);
  void (*decode_bf16)(float* dst, const std::uint16_t* src, usize n);
  void (*encode_f16)(std::uint16_t* dst, const float* src, usize n);
  void (*decode_f16)(float* dst, const std::uint16_t* src, usize n);
};

/// Portable scalar reference codec (always available).
[[nodiscard]] const Codec& scalar_codec();

/// Vector codec compiled into this binary (AVX2[+F16C] / NEON), or nullptr.
/// Availability of the pointer does not imply the CPU can run it.
[[nodiscard]] const Codec* simd_codec();

/// The best codec usable on this CPU (vector when available, else scalar).
[[nodiscard]] const Codec& codec();

/// Scalar building blocks, exposed for tests.
[[nodiscard]] std::uint16_t bf16_from_f32(float v);
[[nodiscard]] float f32_from_bf16(std::uint16_t h);
[[nodiscard]] std::uint16_t f16_from_f32(float v);
[[nodiscard]] float f32_from_f16(std::uint16_t h);

/// Encode/decode through the active codec. kNone is a caller bug (there is
/// no 16-bit target to speak of) and throws.
void encode(Format f, std::uint16_t* dst, const float* src, usize n);
void decode(Format f, float* dst, const std::uint16_t* src, usize n);

/// A stack of equally-sized f32 frames held in compact form. Frames are
/// encoded once at build time and decoded per use into caller scratch —
/// the fast-tier storage for measurement stacks.
class FrameStack {
 public:
  FrameStack() = default;

  /// Encode `frames` (all rows*cols-identical) into one contiguous block.
  FrameStack(const std::vector<RArray2D>& frames, Format format);

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] usize count() const { return count_; }
  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] Format format() const { return format_; }
  /// Resident bytes of the encoded store.
  [[nodiscard]] usize bytes() const { return bits_.size() * sizeof(std::uint16_t); }

  /// Decode frame `idx` into `dst` (must be rows() x cols(), contiguous).
  void decode_into(usize idx, View2D<real> dst) const;

 private:
  std::vector<std::uint16_t> bits_;
  usize count_ = 0;
  index_t rows_ = 0;
  index_t cols_ = 0;
  Format format_ = Format::kNone;
};

}  // namespace ptycho::compact
