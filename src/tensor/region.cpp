#include "tensor/region.hpp"

#include <algorithm>
#include <ostream>

namespace ptycho {

Rect intersect(const Rect& a, const Rect& b) {
  const index_t y0 = std::max(a.y0, b.y0);
  const index_t x0 = std::max(a.x0, b.x0);
  const index_t y1 = std::min(a.y1(), b.y1());
  const index_t x1 = std::min(a.x1(), b.x1());
  if (y1 <= y0 || x1 <= x0) return Rect{};
  return Rect{y0, x0, y1 - y0, x1 - x0};
}

Rect bounding_union(const Rect& a, const Rect& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const index_t y0 = std::min(a.y0, b.y0);
  const index_t x0 = std::min(a.x0, b.x0);
  const index_t y1 = std::max(a.y1(), b.y1());
  const index_t x1 = std::max(a.x1(), b.x1());
  return Rect{y0, x0, y1 - y0, x1 - x0};
}

Rect dilate(const Rect& r, index_t margin) {
  return Rect{r.y0 - margin, r.x0 - margin, r.h + 2 * margin, r.w + 2 * margin};
}

Rect clip(const Rect& r, const Rect& bounds) { return intersect(r, bounds); }

bool overlaps(const Rect& a, const Rect& b) { return !intersect(a, b).empty(); }

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "Rect{y0=" << r.y0 << ", x0=" << r.x0 << ", h=" << r.h << ", w=" << r.w << "}";
}

}  // namespace ptycho
