// Scalar reference codec + codec dispatch + FrameStack. Generic code only
// — this TU is compiled without ISA extension flags (the vector codec
// lives in compact_simd.cpp).
#include "tensor/compact.hpp"

#include <atomic>
#include <cstring>

#include "common/error.hpp"

namespace ptycho::compact {

namespace {

inline std::uint32_t f32_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

inline float bits_f32(std::uint32_t b) {
  float v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

const char* format_name(Format f) {
  switch (f) {
    case Format::kBf16: return "bf16";
    case Format::kF16: return "f16";
    case Format::kNone: break;
  }
  return "f32";
}

std::uint16_t bf16_from_f32(float v) {
  const std::uint32_t bits = f32_bits(v);
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    // NaN: truncate the payload and force the quiet bit — rounding could
    // otherwise carry a small payload up into the exponent (an inf).
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the discarded 16 bits. Inf survives (its low
  // half is zero); large finite values may round up to inf, as IEEE says.
  const std::uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>((bits + rounding) >> 16);
}

float f32_from_bf16(std::uint16_t h) {
  return bits_f32(static_cast<std::uint32_t>(h) << 16);
}

std::uint16_t f16_from_f32(float v) {
  const std::uint32_t bits = f32_bits(v);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t abs = bits & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf or NaN
    if (abs > 0x7f800000u) {
      // NaN: quiet bit + truncated payload, matching F16C.
      return static_cast<std::uint16_t>(sign | 0x7c00u | 0x0200u | ((abs >> 13) & 0x3ffu));
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x47800000u) {
    // Finite but >= 2^16: past the top of binary16, rounds to inf. (The
    // arithmetic below would overflow the 5-bit exponent into NaN bits.)
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x38800000u) {  // normal binary16 range (exponent >= -14)
    const std::uint32_t b = abs - 0x38000000u;  // rebias 127 -> 15
    std::uint32_t half = b >> 13;
    const std::uint32_t rem = b & 0x1fffu;
    // RNE; a carry out of the mantissa rounds into the exponent, and the
    // top of the range overflows to inf (0x7c00) — exactly as IEEE wants.
    half += static_cast<std::uint32_t>(rem > 0x1000u || (rem == 0x1000u && (half & 1u)));
    return static_cast<std::uint16_t>(sign | half);
  }
  if (abs <= 0x33000000u) {
    // Below half the smallest subnormal (2^-25): rounds to signed zero
    // (the exact tie at 2^-25 goes to even, which is also zero).
    return sign;
  }
  // Subnormal binary16: shift the 24-bit significand down to 2^-24 units.
  const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
  const std::uint32_t shift = 126u - (abs >> 23);  // in [14, 24]
  std::uint32_t half = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1u);
  half += static_cast<std::uint32_t>(rem > halfway || (rem == halfway && (half & 1u)));
  return static_cast<std::uint16_t>(sign | half);
}

float f32_from_f16(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  if (exp == 0x1fu) {
    // Inf / NaN; quiet the NaN like the hardware converter does.
    const std::uint32_t quiet = mant != 0 ? 0x00400000u : 0u;
    return bits_f32(sign | 0x7f800000u | (mant << 13) | quiet);
  }
  if (exp != 0) return bits_f32(sign | ((exp + 112u) << 23) | (mant << 13));
  if (mant == 0) return bits_f32(sign);
  // Subnormal: normalize. p = bit position of the leading one (0..9).
  const int p = 31 - __builtin_clz(mant);
  return bits_f32(sign | (static_cast<std::uint32_t>(103 + p) << 23) |
                  ((mant ^ (1u << p)) << (23 - p)));
}

namespace {

void s_encode_bf16(std::uint16_t* dst, const float* src, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = bf16_from_f32(src[i]);
}

void s_decode_bf16(float* dst, const std::uint16_t* src, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = f32_from_bf16(src[i]);
}

void s_encode_f16(std::uint16_t* dst, const float* src, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = f16_from_f32(src[i]);
}

void s_decode_f16(float* dst, const std::uint16_t* src, usize n) {
  for (usize i = 0; i < n; ++i) dst[i] = f32_from_f16(src[i]);
}

constexpr Codec kScalarCodec = {
    "scalar", &s_encode_bf16, &s_decode_bf16, &s_encode_f16, &s_decode_f16,
};

bool simd_codec_usable() {
  if (simd_codec() == nullptr) return false;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  // The vector codec TU is compiled with -mavx2 -mf16c.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
#else
  return true;
#endif
}

}  // namespace

const Codec& scalar_codec() { return kScalarCodec; }

const Codec& codec() {
  static const Codec* active = simd_codec_usable() ? simd_codec() : &kScalarCodec;
  return *active;
}

void encode(Format f, std::uint16_t* dst, const float* src, usize n) {
  switch (f) {
    case Format::kBf16: codec().encode_bf16(dst, src, n); return;
    case Format::kF16: codec().encode_f16(dst, src, n); return;
    case Format::kNone: break;
  }
  PTYCHO_REQUIRE(false, "compact::encode called with Format::kNone");
}

void decode(Format f, float* dst, const std::uint16_t* src, usize n) {
  switch (f) {
    case Format::kBf16: codec().decode_bf16(dst, src, n); return;
    case Format::kF16: codec().decode_f16(dst, src, n); return;
    case Format::kNone: break;
  }
  PTYCHO_REQUIRE(false, "compact::decode called with Format::kNone");
}

FrameStack::FrameStack(const std::vector<RArray2D>& frames, Format format) : format_(format) {
  PTYCHO_REQUIRE(format != Format::kNone, "FrameStack needs a compact format");
  if (frames.empty()) return;
  rows_ = frames.front().rows();
  cols_ = frames.front().cols();
  count_ = frames.size();
  const usize frame_n = static_cast<usize>(rows_) * static_cast<usize>(cols_);
  bits_.resize(frame_n * count_);
  for (usize i = 0; i < count_; ++i) {
    const RArray2D& f = frames[i];
    PTYCHO_REQUIRE(f.rows() == rows_ && f.cols() == cols_,
                   "FrameStack frames must share one shape");
    encode(format_, bits_.data() + i * frame_n, f.data(), frame_n);
  }
}

void FrameStack::decode_into(usize idx, View2D<real> dst) const {
  PTYCHO_REQUIRE(idx < count_, "FrameStack frame index out of range");
  PTYCHO_CHECK(dst.rows() == rows_ && dst.cols() == cols_ && dst.contiguous(),
               "FrameStack decode target must match the frame shape");
  const usize frame_n = static_cast<usize>(rows_) * static_cast<usize>(cols_);
  decode(format_, dst.data(), bits_.data() + idx * frame_n, frame_n);
}

}  // namespace ptycho::compact
