// Vector compact codec: AVX2 integer bf16 rounding + F16C half conversion
// on x86-64, NEON on AArch64. The only TU built with -mf16c; nothing here
// runs unless compact.cpp verified the CPU. Output is bitwise identical to
// the scalar reference in compact.cpp for every input bit pattern
// (tests/test_compact.cpp sweeps the interesting ranges).
#include "tensor/compact.hpp"

#if defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

namespace ptycho::compact {
namespace {

constexpr usize kW = 16;  // floats per iteration (two __m256 blocks)

/// bf16 RNE on 8 floats as integers; returns 8 x u32 with the result in
/// the low 16 bits of each lane. Same algorithm as bf16_from_f32.
inline __m256i bf16_round8(__m256i v) {
  const __m256i abs = _mm256_and_si256(v, _mm256_set1_epi32(0x7fffffff));
  // abs <= 0x7fffffff so signed compare against +0x7f800000 is exact.
  const __m256i is_nan = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7f800000));
  const __m256i top = _mm256_srli_epi32(v, 16);
  const __m256i nan_r = _mm256_or_si256(top, _mm256_set1_epi32(0x0040));
  const __m256i round =
      _mm256_add_epi32(_mm256_set1_epi32(0x7fff), _mm256_and_si256(top, _mm256_set1_epi32(1)));
  const __m256i rne = _mm256_srli_epi32(_mm256_add_epi32(v, round), 16);
  return _mm256_blendv_epi8(rne, nan_r, is_nan);
}

/// Pack two 8 x u32 (values < 0x10000) into 16 x u16 in order.
inline __m256i pack16(__m256i lo, __m256i hi) {
  // packus interleaves the 128-bit lanes: [lo0 hi0 lo1 hi1] -> permute fixes it.
  return _mm256_permute4x64_epi64(_mm256_packus_epi32(lo, hi), 0xD8);
}

void v_encode_bf16(std::uint16_t* dst, const float* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256i lo = bf16_round8(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    const __m256i hi =
        bf16_round8(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 8)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), pack16(lo, hi));
  }
  for (; i < n; ++i) dst[i] = bf16_from_f32(src[i]);
}

void v_decode_bf16(float* dst, const std::uint16_t* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m128i h0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i h1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 8));
    const __m256i w0 = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h0), 16);
    const __m256i w1 = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h1), 16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), w0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 8), w1);
  }
  for (; i < n; ++i) dst[i] = f32_from_bf16(src[i]);
}

void v_encode_f16(std::uint16_t* dst, const float* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m128i h0 = _mm256_cvtps_ph(_mm256_loadu_ps(src + i), _MM_FROUND_TO_NEAREST_INT);
    const __m128i h1 = _mm256_cvtps_ph(_mm256_loadu_ps(src + i + 8), _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 8), h1);
  }
  for (; i < n; ++i) dst[i] = f16_from_f32(src[i]);
}

void v_decode_f16(float* dst, const std::uint16_t* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const __m128i h0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i h1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 8));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h0));
    _mm256_storeu_ps(dst + i + 8, _mm256_cvtph_ps(h1));
  }
  for (; i < n; ++i) dst[i] = f32_from_f16(src[i]);
}

constexpr Codec kAvx2Codec = {
    "avx2-f16c", &v_encode_bf16, &v_decode_bf16, &v_encode_f16, &v_decode_f16,
};

}  // namespace

const Codec* simd_codec() { return &kAvx2Codec; }

}  // namespace ptycho::compact

#elif defined(__ARM_NEON) && defined(__aarch64__)

#include <arm_neon.h>

namespace ptycho::compact {
namespace {

constexpr usize kW = 8;

inline uint16x4_t bf16_round4(uint32x4_t v) {
  const uint32x4_t abs = vandq_u32(v, vdupq_n_u32(0x7fffffffu));
  const uint32x4_t is_nan = vcgtq_u32(abs, vdupq_n_u32(0x7f800000u));
  const uint32x4_t top = vshrq_n_u32(v, 16);
  const uint32x4_t nan_r = vorrq_u32(top, vdupq_n_u32(0x0040u));
  const uint32x4_t round =
      vaddq_u32(vdupq_n_u32(0x7fffu), vandq_u32(top, vdupq_n_u32(1u)));
  const uint32x4_t rne = vshrq_n_u32(vaddq_u32(v, round), 16);
  return vmovn_u32(vbslq_u32(is_nan, nan_r, rne));
}

void v_encode_bf16(std::uint16_t* dst, const float* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const uint16x4_t lo = bf16_round4(vreinterpretq_u32_f32(vld1q_f32(src + i)));
    const uint16x4_t hi = bf16_round4(vreinterpretq_u32_f32(vld1q_f32(src + i + 4)));
    vst1q_u16(dst + i, vcombine_u16(lo, hi));
  }
  for (; i < n; ++i) dst[i] = bf16_from_f32(src[i]);
}

void v_decode_bf16(float* dst, const std::uint16_t* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const uint16x8_t h = vld1q_u16(src + i);
    const uint32x4_t w0 = vshll_n_u16(vget_low_u16(h), 16);
    const uint32x4_t w1 = vshll_n_u16(vget_high_u16(h), 16);
    vst1q_f32(dst + i, vreinterpretq_f32_u32(w0));
    vst1q_f32(dst + i + 4, vreinterpretq_f32_u32(w1));
  }
  for (; i < n; ++i) dst[i] = f32_from_bf16(src[i]);
}

void v_encode_f16(std::uint16_t* dst, const float* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const float16x4_t lo = vcvt_f16_f32(vld1q_f32(src + i));
    const float16x4_t hi = vcvt_f16_f32(vld1q_f32(src + i + 4));
    vst1q_u16(dst + i, vcombine_u16(vreinterpret_u16_f16(lo), vreinterpret_u16_f16(hi)));
  }
  for (; i < n; ++i) dst[i] = f16_from_f32(src[i]);
}

void v_decode_f16(float* dst, const std::uint16_t* src, usize n) {
  usize i = 0;
  for (; i + kW <= n; i += kW) {
    const uint16x8_t h = vld1q_u16(src + i);
    vst1q_f32(dst + i, vcvt_f32_f16(vreinterpret_f16_u16(vget_low_u16(h))));
    vst1q_f32(dst + i + 4, vcvt_f32_f16(vreinterpret_f16_u16(vget_high_u16(h))));
  }
  for (; i < n; ++i) dst[i] = f32_from_f16(src[i]);
}

constexpr Codec kNeonCodec = {
    "neon", &v_encode_bf16, &v_decode_bf16, &v_encode_f16, &v_decode_f16,
};

}  // namespace

const Codec* simd_codec() { return &kNeonCodec; }

}  // namespace ptycho::compact

#else  // no vector codec for this target

namespace ptycho::compact {
const Codec* simd_codec() { return nullptr; }
}  // namespace ptycho::compact

#endif
