// Owning dense tensors (2-D and 3-D) and non-owning strided 2-D views.
//
// Storage is row-major, allocated through tracked_alloc so the virtual
// cluster can account per-rank memory exactly. Arrays are movable but not
// implicitly copyable (clone() is the explicit deep copy) — accidental
// copies of multi-megabyte wavefields are a classic performance bug this
// interface rules out (Core Guidelines C.21/C.67 spirit).
#pragma once

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/memory.hpp"
#include "common/types.hpp"

namespace ptycho {

/// Non-owning view of a (possibly strided) 2-D block.
template <typename T>
class View2D {
 public:
  View2D() = default;
  View2D(T* data, index_t rows, index_t cols, index_t row_stride)
      : data_(data), rows_(rows), cols_(cols), row_stride_(row_stride) {}

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t row_stride() const { return row_stride_; }
  [[nodiscard]] bool contiguous() const { return row_stride_ == cols_; }
  [[nodiscard]] index_t size() const { return rows_ * cols_; }

  T& operator()(index_t y, index_t x) const { return data_[y * row_stride_ + x]; }
  [[nodiscard]] T* row(index_t y) const { return data_ + y * row_stride_; }
  [[nodiscard]] T* data() const { return data_; }

  /// Sub-view of local rectangle [y0, y0+h) x [x0, x0+w).
  [[nodiscard]] View2D<T> sub(index_t y0, index_t x0, index_t h, index_t w) const {
    PTYCHO_CHECK(y0 >= 0 && x0 >= 0 && y0 + h <= rows_ && x0 + w <= cols_,
                 "sub-view out of bounds");
    return View2D<T>(data_ + y0 * row_stride_ + x0, h, w, row_stride_);
  }

  /// Implicit const-qualification of the element type.
  operator View2D<const T>() const { return View2D<const T>(data_, rows_, cols_, row_stride_); }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t row_stride_ = 0;
};

/// Owning, contiguous, row-major 2-D array.
template <typename T>
class Array2D {
 public:
  Array2D() = default;

  Array2D(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    PTYCHO_REQUIRE(rows >= 0 && cols >= 0, "Array2D extents must be non-negative");
    bytes_ = static_cast<usize>(rows_) * static_cast<usize>(cols_) * sizeof(T);
    data_ = static_cast<T*>(tracked_alloc(bytes_));
    std::fill_n(data_, rows_ * cols_, T{});
  }

  ~Array2D() { tracked_free(data_, bytes_); }

  Array2D(const Array2D&) = delete;
  Array2D& operator=(const Array2D&) = delete;

  Array2D(Array2D&& other) noexcept { swap(other); }
  Array2D& operator=(Array2D&& other) noexcept {
    if (this != &other) {
      tracked_free(data_, bytes_);
      data_ = nullptr;
      rows_ = cols_ = 0;
      bytes_ = 0;
      swap(other);
    }
    return *this;
  }

  void swap(Array2D& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    std::swap(bytes_, other.bytes_);
  }

  [[nodiscard]] Array2D clone() const {
    Array2D out(rows_, cols_);
    std::copy_n(data_, rows_ * cols_, out.data_);
    return out;
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t size() const { return rows_ * cols_; }
  [[nodiscard]] usize bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(index_t y, index_t x) { return data_[y * cols_ + x]; }
  const T& operator()(index_t y, index_t x) const { return data_[y * cols_ + x]; }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }

  [[nodiscard]] T* row(index_t y) { return data_ + y * cols_; }
  [[nodiscard]] const T* row(index_t y) const { return data_ + y * cols_; }

  [[nodiscard]] View2D<T> view() { return View2D<T>(data_, rows_, cols_, cols_); }
  [[nodiscard]] View2D<const T> view() const { return View2D<const T>(data_, rows_, cols_, cols_); }

  /// View of local rectangle.
  [[nodiscard]] View2D<T> sub(index_t y0, index_t x0, index_t h, index_t w) {
    return view().sub(y0, x0, h, w);
  }
  [[nodiscard]] View2D<const T> sub(index_t y0, index_t x0, index_t h, index_t w) const {
    return view().sub(y0, x0, h, w);
  }

  void fill(const T& value) { std::fill_n(data_, rows_ * cols_, value); }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  usize bytes_ = 0;
};

/// Owning 3-D array: `slices` contiguous row-major 2-D planes.
/// Models the reconstruction volume V — "a stack of 2-D image slices"
/// (paper Sec. II-B, Fig. 1(c)).
template <typename T>
class Array3D {
 public:
  Array3D() = default;

  Array3D(index_t slices, index_t rows, index_t cols)
      : slices_(slices), rows_(rows), cols_(cols) {
    PTYCHO_REQUIRE(slices >= 0 && rows >= 0 && cols >= 0,
                   "Array3D extents must be non-negative");
    bytes_ = static_cast<usize>(slices_) * static_cast<usize>(rows_) * static_cast<usize>(cols_) *
             sizeof(T);
    data_ = static_cast<T*>(tracked_alloc(bytes_));
    std::fill_n(data_, slices_ * rows_ * cols_, T{});
  }

  ~Array3D() { tracked_free(data_, bytes_); }

  Array3D(const Array3D&) = delete;
  Array3D& operator=(const Array3D&) = delete;

  Array3D(Array3D&& other) noexcept { swap(other); }
  Array3D& operator=(Array3D&& other) noexcept {
    if (this != &other) {
      tracked_free(data_, bytes_);
      data_ = nullptr;
      slices_ = rows_ = cols_ = 0;
      bytes_ = 0;
      swap(other);
    }
    return *this;
  }

  void swap(Array3D& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(slices_, other.slices_);
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    std::swap(bytes_, other.bytes_);
  }

  [[nodiscard]] Array3D clone() const {
    Array3D out(slices_, rows_, cols_);
    std::copy_n(data_, slices_ * rows_ * cols_, out.data_);
    return out;
  }

  [[nodiscard]] index_t slices() const { return slices_; }
  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t size() const { return slices_ * rows_ * cols_; }
  [[nodiscard]] usize bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  T& operator()(index_t s, index_t y, index_t x) {
    return data_[(s * rows_ + y) * cols_ + x];
  }
  const T& operator()(index_t s, index_t y, index_t x) const {
    return data_[(s * rows_ + y) * cols_ + x];
  }

  [[nodiscard]] View2D<T> slice(index_t s) {
    PTYCHO_CHECK(s >= 0 && s < slices_, "slice index out of range");
    return View2D<T>(data_ + s * rows_ * cols_, rows_, cols_, cols_);
  }
  [[nodiscard]] View2D<const T> slice(index_t s) const {
    PTYCHO_CHECK(s >= 0 && s < slices_, "slice index out of range");
    return View2D<const T>(data_ + s * rows_ * cols_, rows_, cols_, cols_);
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }

  void fill(const T& value) { std::fill_n(data_, size(), value); }

 private:
  T* data_ = nullptr;
  index_t slices_ = 0;
  index_t rows_ = 0;
  index_t cols_ = 0;
  usize bytes_ = 0;
};

using CArray2D = Array2D<cplx>;
using CArray3D = Array3D<cplx>;
using RArray2D = Array2D<real>;

}  // namespace ptycho
