// Dataset container: scan pattern + measured diffraction magnitudes.
//
// Mirrors the paper's Table I structure: a dataset is a stack of
// probe_n x probe_n diffraction measurements (one per probe location) plus
// the reconstruction volume geometry. Includes the paper-scale dataset
// descriptors used by the memory model and Table I harness.
#pragma once

#include <string>
#include <vector>

#include "physics/grid.hpp"
#include "physics/multislice.hpp"
#include "physics/probe.hpp"
#include "physics/scan.hpp"
#include "tensor/framed.hpp"

namespace ptycho {

/// Everything needed to build / describe a dataset.
struct DatasetSpec {
  std::string name = "synthetic";
  ScanParams scan;
  OpticsGrid grid;
  ProbeParams probe;
  index_t slices = 8;
  MultisliceConfig model;
};

/// A ptychography dataset ready for reconstruction.
struct Dataset {
  DatasetSpec spec;
  ScanPattern scan;
  Probe probe;
  /// |y_i| — Fourier-magnitude measurements, one per probe location, in
  /// scan (time) order.
  std::vector<RArray2D> measurements;
  /// Ground-truth volume when the dataset is simulated (empty otherwise).
  FramedVolume ground_truth;

  Dataset(DatasetSpec s, ScanPattern sc, Probe p)
      : spec(std::move(s)), scan(std::move(sc)), probe(std::move(p)) {}

  [[nodiscard]] index_t probe_count() const { return scan.count(); }
  [[nodiscard]] Rect field() const { return scan.field(); }

  /// Bytes of the measurement stack (real magnitudes).
  [[nodiscard]] usize measurement_bytes() const;

  /// Bytes of a full (undecomposed) complex reconstruction volume.
  [[nodiscard]] usize volume_bytes() const;
};

/// Paper-scale dataset descriptor (Table I rows) — used for Table I output
/// and the analytic memory model; never materialized in RAM.
struct PaperDataset {
  std::string name;
  index_t probes = 0;       ///< number of probe locations
  index_t meas_n = 0;       ///< diffraction frames are meas_n x meas_n
  index_t scan_rows = 0;    ///< scan grid layout (rows x cols == probes)
  index_t scan_cols = 0;
  index_t vol_y = 0;        ///< reconstruction extent (pixels)
  index_t vol_x = 0;
  index_t slices = 0;
  double dx_pm = 10.0;
  double dz_pm = 125.0;

  [[nodiscard]] usize measurement_bytes() const;
  [[nodiscard]] usize volume_bytes() const;
  /// Raster step (px) implied by scan layout and volume extent.
  [[nodiscard]] index_t step_px() const;
};

/// The two Lead Titanate datasets of Table I.
[[nodiscard]] PaperDataset paper_small_dataset();
[[nodiscard]] PaperDataset paper_large_dataset();

/// Scaled-down repro specs (DESIGN.md Sec. 2) that run on one host.
[[nodiscard]] DatasetSpec repro_small_spec();
[[nodiscard]] DatasetSpec repro_large_spec();
/// Tiny spec for unit tests (seconds, not minutes).
[[nodiscard]] DatasetSpec repro_tiny_spec();

}  // namespace ptycho
