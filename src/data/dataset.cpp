#include "data/dataset.hpp"

namespace ptycho {

usize Dataset::measurement_bytes() const {
  usize total = 0;
  for (const auto& m : measurements) total += m.bytes();
  return total;
}

usize Dataset::volume_bytes() const {
  const Rect f = field();
  return static_cast<usize>(spec.slices) * static_cast<usize>(f.h) * static_cast<usize>(f.w) *
         sizeof(cplx);
}

usize PaperDataset::measurement_bytes() const {
  return static_cast<usize>(probes) * static_cast<usize>(meas_n) * static_cast<usize>(meas_n) *
         sizeof(real);
}

usize PaperDataset::volume_bytes() const {
  return static_cast<usize>(slices) * static_cast<usize>(vol_y) * static_cast<usize>(vol_x) *
         sizeof(cplx);
}

index_t PaperDataset::step_px() const {
  // vol extent = (rows-1)*step + meas_n (margin-free raster field).
  if (scan_rows <= 1) return meas_n;
  return (vol_y - meas_n) / (scan_rows - 1);
}

PaperDataset paper_small_dataset() {
  PaperDataset d;
  d.name = "Lead Titanate small";
  d.probes = 4158;
  d.meas_n = 1024;
  // 4158 = 63 x 66 (near-square raster); reconstruction 1536^2 x 100.
  d.scan_rows = 63;
  d.scan_cols = 66;
  d.vol_y = 1536;
  d.vol_x = 1536;
  d.slices = 100;
  return d;
}

PaperDataset paper_large_dataset() {
  PaperDataset d;
  d.name = "Lead Titanate large";
  d.probes = 16632;
  d.meas_n = 1024;
  // 16632 = 126 x 132 (near-square raster); reconstruction 3072^2 x 100.
  d.scan_rows = 126;
  d.scan_cols = 132;
  d.vol_y = 3072;
  d.vol_x = 3072;
  d.slices = 100;
  return d;
}

namespace {
DatasetSpec base_spec() {
  DatasetSpec spec;
  spec.grid.probe_n = 64;
  spec.grid.dx_pm = 10.0;
  spec.grid.dz_pm = 125.0;
  spec.grid.wavelength_pm = electron_wavelength_pm(200.0);
  // Scaled defocus so the probe disc occupies a paper-like fraction of the
  // (scaled) window; 30 mrad aperture as acquired.
  spec.probe.aperture_mrad = 30.0;
  spec.probe.defocus_pm = 2000.0;
  spec.scan.probe_n = static_cast<index_t>(spec.grid.probe_n);
  spec.model.model = ObjectModel::kTransmittance;
  return spec;
}
}  // namespace

DatasetSpec repro_small_spec() {
  DatasetSpec spec = base_spec();
  spec.name = "repro-small";
  spec.scan.rows = 15;
  spec.scan.cols = 18;
  spec.scan.step_px = 12;  // 81% linear overlap, paper-like (>70%)
  spec.scan.margin_px = 4;
  spec.slices = 8;
  return spec;
}

DatasetSpec repro_large_spec() {
  DatasetSpec spec = base_spec();
  spec.name = "repro-large";
  spec.scan.rows = 30;
  spec.scan.cols = 36;
  spec.scan.step_px = 12;
  spec.scan.margin_px = 4;
  spec.slices = 8;
  return spec;
}

DatasetSpec repro_tiny_spec() {
  DatasetSpec spec = base_spec();
  spec.name = "repro-tiny";
  spec.grid.probe_n = 32;
  spec.probe.defocus_pm = 1000.0;
  spec.scan.probe_n = 32;
  spec.scan.rows = 6;
  spec.scan.cols = 6;
  spec.scan.step_px = 8;
  spec.scan.margin_px = 2;
  spec.slices = 3;
  return spec;
}

}  // namespace ptycho
