#include "data/synthetic.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"

namespace ptycho {

namespace {

struct Column {
  double y_pm = 0.0;
  double x_pm = 0.0;
  double phase = 0.0;
  double absorption = 0.0;
};

// Atomic columns of one perovskite unit cell, in cell-fraction coordinates.
// Corner (0,0): heavy A-site (Pb). Center (1/2,1/2): B-site (Ti). Edge
// midpoints: oxygen.
struct Site {
  double fy, fx;
  int kind;  // 0 heavy, 1 center, 2 oxygen
};
constexpr Site kSites[] = {
    {0.0, 0.0, 0}, {0.5, 0.5, 1}, {0.5, 0.0, 2}, {0.0, 0.5, 2},
};

}  // namespace

FramedVolume make_perovskite_specimen(const Rect& field, index_t slices,
                                      const OpticsGrid& grid, const SpecimenParams& params) {
  PTYCHO_REQUIRE(slices >= 1, "specimen needs at least one slice");
  PTYCHO_REQUIRE(!field.empty(), "specimen field must be non-empty");
  FramedVolume volume(slices, field);

  const double dx = grid.dx_pm;
  const double a = params.lattice_pm;
  const double sigma = params.atom_sigma_pm;
  const double two_sigma_sq = 2.0 * sigma * sigma;
  const double cutoff = 4.0 * sigma;  // truncate Gaussians at 4 sigma

  Rng rng(params.seed);

  for (index_t s = 0; s < slices; ++s) {
    // Build the column list for this slice (jittered lattice).
    std::vector<Column> columns;
    const double field_h_pm = static_cast<double>(field.h) * dx;
    const double field_w_pm = static_cast<double>(field.w) * dx;
    const auto cells_y = static_cast<index_t>(field_h_pm / a) + 2;
    const auto cells_x = static_cast<index_t>(field_w_pm / a) + 2;
    for (index_t cy = -1; cy < cells_y; ++cy) {
      for (index_t cx = -1; cx < cells_x; ++cx) {
        for (const Site& site : kSites) {
          Column col;
          col.y_pm = (static_cast<double>(cy) + site.fy) * a + rng.normal(0.0, params.jitter_pm);
          col.x_pm = (static_cast<double>(cx) + site.fx) * a + rng.normal(0.0, params.jitter_pm);
          switch (site.kind) {
            case 0:
              col.phase = params.heavy_phase;
              col.absorption = params.absorption;
              break;
            case 1:
              col.phase = params.center_phase;
              col.absorption = params.absorption * 0.5;
              break;
            default:
              col.phase = params.oxygen_phase;
              col.absorption = params.absorption * 0.2;
              break;
          }
          columns.push_back(col);
        }
      }
    }

    // Rasterize phase and absorption fields.
    std::vector<double> phase(static_cast<usize>(field.h * field.w), 0.0);
    std::vector<double> absorb(static_cast<usize>(field.h * field.w), 0.0);
    for (const Column& col : columns) {
      const auto y_lo = static_cast<index_t>((col.y_pm - cutoff) / dx);
      const auto y_hi = static_cast<index_t>((col.y_pm + cutoff) / dx) + 1;
      const auto x_lo = static_cast<index_t>((col.x_pm - cutoff) / dx);
      const auto x_hi = static_cast<index_t>((col.x_pm + cutoff) / dx) + 1;
      for (index_t y = std::max<index_t>(y_lo, 0); y < std::min(y_hi, field.h); ++y) {
        const double dy = static_cast<double>(y) * dx - col.y_pm;
        for (index_t x = std::max<index_t>(x_lo, 0); x < std::min(x_hi, field.w); ++x) {
          const double dxx = static_cast<double>(x) * dx - col.x_pm;
          const double g = std::exp(-(dy * dy + dxx * dxx) / two_sigma_sq);
          const auto idx = static_cast<usize>(y * field.w + x);
          phase[idx] += col.phase * g;
          absorb[idx] += col.absorption * g;
        }
      }
    }

    // Convert to complex transmittance t = (1 - absorb) * exp(i * phase).
    for (index_t y = 0; y < field.h; ++y) {
      for (index_t x = 0; x < field.w; ++x) {
        const auto idx = static_cast<usize>(y * field.w + x);
        const double amp = std::max(0.0, 1.0 - absorb[idx]);
        volume.data(s, y, x) = cplx(static_cast<real>(amp * std::cos(phase[idx])),
                                    static_cast<real>(amp * std::sin(phase[idx])));
      }
    }
  }
  return volume;
}

FramedVolume make_vacuum_volume(const Rect& field, index_t slices) {
  FramedVolume volume(slices, field);
  volume.data.fill(cplx(1, 0));
  return volume;
}

}  // namespace ptycho
