#include "data/io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ptycho::io {

void write_pgm(const std::string& path, View2D<const real> image) {
  double lo = 1e300;
  double hi = -1e300;
  for (index_t y = 0; y < image.rows(); ++y) {
    for (index_t x = 0; x < image.cols(); ++x) {
      const auto v = static_cast<double>(image(y, x));
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  // A constant image has no contrast to map: emit mid-gray (as documented)
  // rather than the black frame a naive (v - lo) / 1.0 would produce.
  const bool flat = !(hi > lo);
  const double span = flat ? 1.0 : hi - lo;

  std::ofstream out(path, std::ios::binary);
  PTYCHO_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << "P5\n" << image.cols() << " " << image.rows() << "\n255\n";
  for (index_t y = 0; y < image.rows(); ++y) {
    for (index_t x = 0; x < image.cols(); ++x) {
      const double v = (static_cast<double>(image(y, x)) - lo) / span;
      const auto byte = flat ? static_cast<unsigned char>(128)
                             : static_cast<unsigned char>(std::clamp(v * 255.0, 0.0, 255.0));
      out.put(static_cast<char>(byte));
    }
  }
  PTYCHO_CHECK(out.good(), "write failed for '" << path << "'");
}

void write_phase_pgm(const std::string& path, View2D<const cplx> slice) {
  RArray2D phase(slice.rows(), slice.cols());
  for (index_t y = 0; y < slice.rows(); ++y) {
    for (index_t x = 0; x < slice.cols(); ++x) {
      phase(y, x) = std::arg(slice(y, x));
    }
  }
  write_pgm(path, phase.view());
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path);
  PTYCHO_CHECK(impl_->out.good(), "cannot open '" << path << "' for writing");
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::header(const std::vector<std::string>& names) {
  for (usize i = 0; i < names.size(); ++i) {
    if (i > 0) impl_->out << ',';
    impl_->out << names[i];
  }
  impl_->out << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  std::ostringstream line;
  for (usize i = 0; i < values.size(); ++i) {
    if (i > 0) line << ',';
    line << values[i];
  }
  impl_->out << line.str() << '\n';
}

void CsvWriter::raw_row(const std::string& line) { impl_->out << line << '\n'; }

namespace {
constexpr std::uint64_t kVolumeMagic = 0x50545943484F564CULL;  // "PTYCHOVL"
}

void save_volume(const std::string& path, const FramedVolume& volume) {
  std::ofstream out(path, std::ios::binary);
  PTYCHO_CHECK(out.good(), "cannot open '" << path << "' for writing");
  const std::uint64_t magic = kVolumeMagic;
  const std::int64_t header[5] = {volume.frame.y0, volume.frame.x0, volume.frame.h,
                                  volume.frame.w, volume.slices()};
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(volume.data.data()),
            static_cast<std::streamsize>(volume.data.bytes()));
  PTYCHO_CHECK(out.good(), "write failed for '" << path << "'");
}

FramedVolume load_volume(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PTYCHO_CHECK(in.good(), "cannot open '" << path << "' for reading");
  std::uint64_t magic = 0;
  std::int64_t header[5] = {};
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  PTYCHO_CHECK(in.good() && magic == kVolumeMagic, "'" << path << "' is not a volume file");
  FramedVolume volume(header[4], Rect{header[0], header[1], header[2], header[3]});
  in.read(reinterpret_cast<char*>(volume.data.data()),
          static_cast<std::streamsize>(volume.data.bytes()));
  PTYCHO_CHECK(in.good(), "truncated volume file '" << path << "'");
  return volume;
}

namespace {
constexpr std::uint64_t kDatasetMagic = 0x5054594348444154ULL;  // "PTYCHDAT"

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void write_f64(std::ofstream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}
double read_f64(std::ifstream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}
}  // namespace

void save_dataset(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  PTYCHO_CHECK(out.good(), "cannot open '" << path << "' for writing");
  write_u64(out, kDatasetMagic);
  const DatasetSpec& spec = dataset.spec;
  write_u64(out, spec.name.size());
  out.write(spec.name.data(), static_cast<std::streamsize>(spec.name.size()));
  write_u64(out, static_cast<std::uint64_t>(spec.scan.rows));
  write_u64(out, static_cast<std::uint64_t>(spec.scan.cols));
  write_u64(out, static_cast<std::uint64_t>(spec.scan.step_px));
  write_u64(out, static_cast<std::uint64_t>(spec.scan.step_y_px));
  write_u64(out, static_cast<std::uint64_t>(spec.scan.margin_px));
  write_u64(out, static_cast<std::uint64_t>(spec.scan.probe_n));
  write_u64(out, spec.grid.probe_n);
  write_f64(out, spec.grid.dx_pm);
  write_f64(out, spec.grid.dz_pm);
  write_f64(out, spec.grid.wavelength_pm);
  write_f64(out, spec.probe.aperture_mrad);
  write_f64(out, spec.probe.defocus_pm);
  write_f64(out, spec.probe.cs_pm);
  write_u64(out, static_cast<std::uint64_t>(spec.slices));
  write_u64(out, static_cast<std::uint64_t>(spec.model.model));
  write_f64(out, static_cast<double>(spec.model.sigma));
  write_u64(out, dataset.measurements.size());
  for (const RArray2D& m : dataset.measurements) {
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.bytes()));
  }
  PTYCHO_CHECK(out.good(), "write failed for '" << path << "'");
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PTYCHO_CHECK(in.good(), "cannot open '" << path << "' for reading");
  PTYCHO_CHECK(read_u64(in) == kDatasetMagic, "'" << path << "' is not a dataset file");
  DatasetSpec spec;
  const auto name_len = read_u64(in);
  PTYCHO_CHECK(name_len < (1u << 20), "corrupt dataset name length");
  spec.name.resize(name_len);
  in.read(spec.name.data(), static_cast<std::streamsize>(name_len));
  spec.scan.rows = static_cast<index_t>(read_u64(in));
  spec.scan.cols = static_cast<index_t>(read_u64(in));
  spec.scan.step_px = static_cast<index_t>(read_u64(in));
  spec.scan.step_y_px = static_cast<index_t>(read_u64(in));
  spec.scan.margin_px = static_cast<index_t>(read_u64(in));
  spec.scan.probe_n = static_cast<index_t>(read_u64(in));
  spec.grid.probe_n = read_u64(in);
  spec.grid.dx_pm = read_f64(in);
  spec.grid.dz_pm = read_f64(in);
  spec.grid.wavelength_pm = read_f64(in);
  spec.probe.aperture_mrad = read_f64(in);
  spec.probe.defocus_pm = read_f64(in);
  spec.probe.cs_pm = read_f64(in);
  spec.slices = static_cast<index_t>(read_u64(in));
  spec.model.model = static_cast<ObjectModel>(read_u64(in));
  spec.model.sigma = static_cast<real>(read_f64(in));
  PTYCHO_CHECK(in.good(), "truncated dataset header in '" << path << "'");

  Dataset dataset(spec, ScanPattern(spec.scan), Probe(spec.grid, spec.probe));
  const auto count = read_u64(in);
  PTYCHO_CHECK(count == static_cast<std::uint64_t>(dataset.scan.count()),
               "dataset '" << path << "' measurement count does not match its scan");
  const auto n = static_cast<index_t>(spec.grid.probe_n);
  for (std::uint64_t i = 0; i < count; ++i) {
    RArray2D m(n, n);
    in.read(reinterpret_cast<char*>(m.data()), static_cast<std::streamsize>(m.bytes()));
    dataset.measurements.push_back(std::move(m));
  }
  PTYCHO_CHECK(in.good(), "truncated measurements in '" << path << "'");
  return dataset;
}

}  // namespace ptycho::io
