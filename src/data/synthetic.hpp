// Synthetic perovskite specimen generator.
//
// Stand-in for the paper's Lead Titanate (PbTiO3) samples: a square
// perovskite lattice (heavy corner atoms, lighter body-center atom,
// oxygen sites) rendered as Gaussian phase bumps with mild absorption,
// with per-slice positional jitter so slices differ (exercising the 3-D
// multi-slice path). See DESIGN.md "substitutions".
#pragma once

#include "physics/grid.hpp"
#include "tensor/framed.hpp"

#include <cstdint>

namespace ptycho {

struct SpecimenParams {
  double lattice_pm = 390.0;     ///< PbTiO3 a-axis ≈ 3.9 Å
  double atom_sigma_pm = 35.0;   ///< Gaussian width of an atomic column
  double heavy_phase = 0.60;     ///< Pb-column peak phase (rad)
  double center_phase = 0.35;    ///< Ti-column peak phase
  double oxygen_phase = 0.15;    ///< O-column peak phase
  double absorption = 0.02;      ///< peak amplitude loss at a heavy column
  double jitter_pm = 6.0;        ///< per-slice random displacement of columns
  std::uint64_t seed = 42;
};

/// Generate the complex transmittance volume over `field` with `slices`
/// slices. The returned volume uses the transmittance object model
/// (t = exp(i*phase) * (1 - absorption)), i.e. feed it to
/// MultisliceOperator with ObjectModel::kTransmittance.
[[nodiscard]] FramedVolume make_perovskite_specimen(const Rect& field, index_t slices,
                                                    const OpticsGrid& grid,
                                                    const SpecimenParams& params = {});

/// A featureless "vacuum" volume (transmittance 1 everywhere) — the usual
/// initial guess for reconstruction.
[[nodiscard]] FramedVolume make_vacuum_volume(const Rect& field, index_t slices);

}  // namespace ptycho
