#include "data/simulate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"

namespace ptycho {

std::vector<RArray2D> simulate_measurements(const MultisliceOperator& op, const Probe& probe,
                                            const FramedVolume& specimen,
                                            const ScanPattern& scan,
                                            const AcquisitionParams& acq) {
  const auto n = static_cast<index_t>(op.grid().probe_n);
  MultisliceWorkspace ws(n, specimen.slices());
  Rng rng(acq.noise_seed);

  std::vector<RArray2D> measurements;
  measurements.reserve(static_cast<usize>(scan.count()));
  for (const ProbeLocation& loc : scan.locations()) {
    PTYCHO_CHECK(specimen.frame.contains(loc.window),
                 "probe window " << loc.window << " escapes the specimen field");
    RArray2D mag(n, n);
    op.simulate_magnitude(probe, specimen, loc.window, ws, mag.view());

    if (acq.dose_electrons > 0.0) {
      // Scale intensities so they sum to the per-position dose, draw
      // Poisson counts, convert back to magnitudes.
      double total_intensity = 0.0;
      for (index_t y = 0; y < n; ++y) {
        for (index_t x = 0; x < n; ++x) {
          total_intensity += static_cast<double>(mag(y, x)) * static_cast<double>(mag(y, x));
        }
      }
      if (total_intensity > 0.0) {
        const double scale = acq.dose_electrons / total_intensity;
        for (index_t y = 0; y < n; ++y) {
          for (index_t x = 0; x < n; ++x) {
            const double intensity = static_cast<double>(mag(y, x)) *
                                     static_cast<double>(mag(y, x)) * scale;
            const double counts = static_cast<double>(rng.poisson(intensity));
            mag(y, x) = static_cast<real>(std::sqrt(counts / scale));
          }
        }
      }
    }
    measurements.push_back(std::move(mag));
  }
  return measurements;
}

Dataset make_synthetic_dataset(const DatasetSpec& spec, const SpecimenParams& specimen_params,
                               const AcquisitionParams& acq) {
  PTYCHO_REQUIRE(spec.scan.probe_n == static_cast<index_t>(spec.grid.probe_n),
                 "scan probe_n must match optics grid probe_n");
  ScanPattern scan(spec.scan);
  Probe probe(spec.grid, spec.probe);

  Dataset dataset(spec, std::move(scan), std::move(probe));
  FramedVolume specimen =
      make_perovskite_specimen(dataset.scan.field(), spec.slices, spec.grid, specimen_params);

  MultisliceOperator op(spec.grid, spec.model);
  dataset.measurements =
      simulate_measurements(op, dataset.probe, specimen, dataset.scan, acq);
  dataset.ground_truth = std::move(specimen);
  return dataset;
}

}  // namespace ptycho
