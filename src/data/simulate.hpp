// Forward data acquisition: turn a specimen into a measured dataset.
//
// Substitutes for the microscope: runs the multislice forward model at
// every probe location and (optionally) applies Poisson shot noise at a
// given electron dose, like the simulated acquisitions in the paper.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"

namespace ptycho {

struct AcquisitionParams {
  /// Electrons per probe position; 0 disables noise (noiseless magnitudes).
  double dose_electrons = 0.0;
  std::uint64_t noise_seed = 1234;
};

/// Build a complete synthetic dataset: specimen + scan + probe +
/// simulated measurements (with the ground truth retained).
[[nodiscard]] Dataset make_synthetic_dataset(const DatasetSpec& spec,
                                             const SpecimenParams& specimen = {},
                                             const AcquisitionParams& acq = {});

/// Simulate measurements for an existing volume/scan/probe (used by tests
/// that need measurements consistent with a known object).
[[nodiscard]] std::vector<RArray2D> simulate_measurements(const MultisliceOperator& op,
                                                          const Probe& probe,
                                                          const FramedVolume& specimen,
                                                          const ScanPattern& scan,
                                                          const AcquisitionParams& acq = {});

}  // namespace ptycho
