// Output helpers: PGM images (Fig. 8 artifact panels), CSV series
// (Fig. 7/9 data), and raw binary volume snapshots.
#pragma once

#include <string>
#include <vector>

#include "tensor/framed.hpp"

namespace ptycho::io {

/// Write a grayscale 8-bit PGM of the view, linearly mapping
/// [min, max] -> [0, 255]; if min == max the image is mid-gray.
void write_pgm(const std::string& path, View2D<const real> image);

/// Phase of a complex slice as a PGM (useful for atomic-lattice views).
void write_phase_pgm(const std::string& path, View2D<const cplx> slice);

/// CSV writer: header row then data rows.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(const std::vector<std::string>& names);
  void row(const std::vector<double>& values);
  void raw_row(const std::string& line);

 private:
  struct Impl;
  Impl* impl_;
};

/// Raw little-endian dump/load of a framed volume (frame + slices + data).
void save_volume(const std::string& path, const FramedVolume& volume);
[[nodiscard]] FramedVolume load_volume(const std::string& path);

}  // namespace ptycho::io

#include "data/dataset.hpp"

namespace ptycho::io {

/// Serialize a dataset (spec + measurement stack; the probe is rebuilt
/// from the spec on load, the ground truth is not persisted). Enables
/// simulate-once / reconstruct-many workflows and checkpoint-resume runs
/// from the CLI tool.
void save_dataset(const std::string& path, const Dataset& dataset);
[[nodiscard]] Dataset load_dataset(const std::string& path);

}  // namespace ptycho::io
